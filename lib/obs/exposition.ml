(* OpenMetrics text exposition of the whole observability registry:
   Metrics counters/gauges/histograms, Window meters and sliding-window
   histograms, GC gauges from [Gc.quick_stat], and pool busy-fractions
   derived from the [pool.busy_ns.w<i>] counters.

   Internal metric names are dotted ([server.queue.depth.s0]); the
   exposition sanitizes them to [ppdm_server_queue_depth] and turns a
   trailing [.s<i>]/[.w<i>] component into a [shard="i"]/[worker="i"]
   label, so per-shard families aggregate naturally in any OpenMetrics
   consumer. *)

(* ------------------------------------------------------------- names *)

let sanitize_name name =
  let buf = Buffer.create (String.length name + 5) in
  Buffer.add_string buf "ppdm_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let all_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* [server.queue.depth.s3] -> family [server.queue.depth], shard label 3;
   likewise [.w<i>] -> worker.  Anything else keeps its full name. *)
let family_of name =
  match String.rindex_opt name '.' with
  | Some i when i > 0 && i < String.length name - 2 ->
      let comp = String.sub name (i + 1) (String.length name - i - 1) in
      let digits = String.sub comp 1 (String.length comp - 1) in
      if all_digits digits then
        match comp.[0] with
        | 's' -> (String.sub name 0 i, [ ("shard", digits) ])
        | 'w' -> (String.sub name 0 i, [ ("worker", digits) ])
        | _ -> (name, [])
      else (name, [])
  | _ -> (name, [])

(* ------------------------------------------------------------ render *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let labels_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"

(* Group a name-sorted [(name, v)] list into [(family, (labels, v) list)]
   preserving first-appearance order (instances of one family are
   adjacent after the sort, so this keeps the output sorted too). *)
let group items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, v) ->
      let fam, labels = family_of name in
      match Hashtbl.find_opt tbl fam with
      | Some l -> l := (labels, v) :: !l
      | None ->
          Hashtbl.replace tbl fam (ref [ (labels, v) ]);
          order := fam :: !order)
    items;
  List.rev_map (fun fam -> (fam, List.rev !(Hashtbl.find tbl fam))) !order

(* Pool workers call [timed_task] from process start; busy fraction needs
   the observation interval's origin.  [note_start] pins it (serve does
   at startup); 0 means "never noted" and suppresses the family. *)
let start_ns = Atomic.make 0

let note_start ?now () =
  let now = match now with Some t -> t | None -> Metrics.now_ns () in
  Atomic.set start_ns now

let buf_family buf fname typ =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fname typ)

let buf_sample buf fname labels value =
  Buffer.add_string buf
    (Printf.sprintf "%s%s %s\n" fname (labels_string labels) value)

let render_counters buf counters =
  List.iter
    (fun (fam, instances) ->
      let fname = sanitize_name fam in
      buf_family buf fname "counter";
      List.iter
        (fun (labels, v) ->
          buf_sample buf (fname ^ "_total") labels (string_of_int v))
        instances)
    (group counters)

let render_gauges buf gauges =
  List.iter
    (fun (fam, instances) ->
      let fname = sanitize_name fam in
      buf_family buf fname "gauge";
      List.iter
        (fun (labels, v) -> buf_sample buf fname labels (fnum v))
        instances)
    (group gauges)

let render_histograms buf hists =
  List.iter
    (fun (fam, instances) ->
      let fname = sanitize_name fam in
      buf_family buf fname "histogram";
      List.iter
        (fun (labels, (h : Metrics.histogram)) ->
          let cum = ref 0 in
          List.iter
            (fun (lo, c) ->
              cum := !cum + c;
              let le = Metrics.bucket_upper_edge (Metrics.bucket_of lo) in
              buf_sample buf (fname ^ "_bucket")
                (labels @ [ ("le", string_of_int le) ])
                (string_of_int !cum))
            h.Metrics.buckets;
          buf_sample buf (fname ^ "_bucket")
            (labels @ [ ("le", "+Inf") ])
            (string_of_int h.Metrics.count);
          buf_sample buf (fname ^ "_count") labels (string_of_int h.Metrics.count);
          buf_sample buf (fname ^ "_sum") labels (string_of_int h.Metrics.sum))
        instances;
      (* Derived per-instance summaries as gauge families: OpenMetrics
         histograms carry no quantiles, and operators want them without
         running a bucket query. *)
      List.iter
        (fun (suffix, pick) ->
          buf_family buf (fname ^ suffix) "gauge";
          List.iter
            (fun (labels, h) ->
              buf_sample buf (fname ^ suffix) labels (string_of_int (pick h)))
            instances)
        [
          ("_min", fun (h : Metrics.histogram) -> h.Metrics.min);
          ("_max", fun h -> h.Metrics.max);
          ("_p50", fun h -> Metrics.quantile h 0.5);
          ("_p90", fun h -> Metrics.quantile h 0.9);
          ("_p99", fun h -> Metrics.quantile h 0.99);
        ])
    (group hists)

let render_meters buf (meters : (string * Window.meter_snapshot) list) =
  List.iter
    (fun (fam, instances) ->
      let fname = sanitize_name fam in
      buf_family buf fname "counter";
      List.iter
        (fun (labels, (m : Window.meter_snapshot)) ->
          buf_sample buf (fname ^ "_total") labels (string_of_int m.Window.total))
        instances;
      buf_family buf (fname ^ "_rate") "gauge";
      List.iter
        (fun (labels, (m : Window.meter_snapshot)) ->
          buf_sample buf (fname ^ "_rate") labels (fnum m.Window.rate))
        instances)
    (group meters)

let render_gc buf =
  let s = Gc.quick_stat () in
  List.iter
    (fun (name, v) ->
      let fname = "ppdm_gc_" ^ name in
      buf_family buf fname "gauge";
      buf_sample buf fname [] (fnum v))
    [
      ("minor_words", s.Gc.minor_words);
      ("promoted_words", s.Gc.promoted_words);
      ("major_words", s.Gc.major_words);
      ("minor_collections", float_of_int s.Gc.minor_collections);
      ("major_collections", float_of_int s.Gc.major_collections);
      ("compactions", float_of_int s.Gc.compactions);
      ("heap_words", float_of_int s.Gc.heap_words);
      ("top_heap_words", float_of_int s.Gc.top_heap_words);
    ]

let busy_prefix = "pool.busy_ns.w"

let render_busy buf now counters =
  let start = Atomic.get start_ns in
  if start > 0 && now > start then begin
    let elapsed = float_of_int (now - start) in
    let workers =
      List.filter_map
        (fun (name, v) ->
          if
            String.length name > String.length busy_prefix
            && String.sub name 0 (String.length busy_prefix) = busy_prefix
          then
            let w =
              String.sub name
                (String.length busy_prefix)
                (String.length name - String.length busy_prefix)
            in
            if all_digits w then Some (w, float_of_int v /. elapsed) else None
          else None)
        counters
    in
    if workers <> [] then begin
      buf_family buf "ppdm_pool_busy_fraction" "gauge";
      List.iter
        (fun (w, frac) ->
          buf_sample buf "ppdm_pool_busy_fraction"
            [ ("worker", w) ]
            (fnum (Float.min 1. frac)))
        workers
    end
  end

(* A name recorded both as an all-time instrument and as a window
   instrument would emit the same family twice (two TYPE lines — invalid
   OpenMetrics).  The all-time registry wins and the window duplicate is
   dropped; pick distinct names to expose both. *)
let drop_colliding taken items =
  List.filter (fun (name, _) -> not (List.mem (fst (family_of name)) taken)) items

let render ?now () =
  let now = match now with Some t -> t | None -> Metrics.now_ns () in
  let snap = Metrics.snapshot () in
  let wsnap = Window.snapshot ~now () in
  let families items = List.map fst (group items) in
  let buf = Buffer.create 4096 in
  render_counters buf snap.Metrics.counters;
  render_gauges buf snap.Metrics.gauges;
  render_histograms buf snap.Metrics.histograms;
  render_meters buf
    (drop_colliding (families snap.Metrics.counters) wsnap.Window.meters);
  render_histograms buf
    (drop_colliding (families snap.Metrics.histograms) wsnap.Window.histograms);
  render_busy buf now snap.Metrics.counters;
  render_gc buf;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------- parse *)

type sample = {
  name : string;
  labels : (string * string) list;
  value : float;
}

exception Bad of string

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let parse_value s =
  match s with
  | "+Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | _ -> (
      match float_of_string_opt s with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "bad value %S" s)))

(* name, optional {key=value,...} label set (values quoted, with
   backslash/quote/newline escapes), a space, the value, and an optional
   trailing timestamp (ignored). *)
let parse_sample_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do
    incr i
  done;
  if !i = 0 then raise (Bad (Printf.sprintf "bad sample line %S" line));
  let name = String.sub line 0 !i in
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let fin = ref false in
    while not !fin do
      if !i >= n then raise (Bad "unterminated label set")
      else if line.[!i] = '}' then begin
        incr i;
        fin := true
      end
      else begin
        let k0 = !i in
        while !i < n && is_name_char line.[!i] do
          incr i
        done;
        if !i = k0 || !i + 1 >= n || line.[!i] <> '=' || line.[!i + 1] <> '"'
        then raise (Bad (Printf.sprintf "bad label in %S" line));
        let key = String.sub line k0 (!i - k0) in
        i := !i + 2;
        let vbuf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= n then raise (Bad "unterminated label value")
          else if line.[!i] = '\\' then begin
            if !i + 1 >= n then raise (Bad "dangling escape");
            (match line.[!i + 1] with
            | '\\' -> Buffer.add_char vbuf '\\'
            | '"' -> Buffer.add_char vbuf '"'
            | 'n' -> Buffer.add_char vbuf '\n'
            | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
            i := !i + 2
          end
          else if line.[!i] = '"' then begin
            incr i;
            closed := true
          end
          else begin
            Buffer.add_char vbuf line.[!i];
            incr i
          end
        done;
        labels := (key, Buffer.contents vbuf) :: !labels;
        if !i < n && line.[!i] = ',' then incr i
      end
    done
  end;
  if !i >= n || line.[!i] <> ' ' then
    raise (Bad (Printf.sprintf "missing value in %S" line));
  while !i < n && line.[!i] = ' ' do
    incr i
  done;
  let v0 = !i in
  while !i < n && line.[!i] <> ' ' do
    incr i
  done;
  let value = parse_value (String.sub line v0 (!i - v0)) in
  { name; labels = List.rev !labels; value }

let fold_lines text f =
  List.iteri
    (fun lineno line -> if line <> "" then f lineno line)
    (String.split_on_char '\n' text)

let parse text =
  try
    let samples = ref [] in
    fold_lines text (fun _ line ->
        if line.[0] <> '#' then samples := parse_sample_line line :: !samples);
    Ok (List.rev !samples)
  with Bad msg -> Error msg

(* --------------------------------------------------------- validation *)

let strip_suffix name suffix =
  let ln = String.length name and ls = String.length suffix in
  if ln > ls && String.sub name (ln - ls) ls = suffix then
    Some (String.sub name 0 (ln - ls))
  else None

(* Structural OpenMetrics checks on top of [parse]: terminal [# EOF],
   unique TYPE per family, every sample attributable to a declared
   family with the sample-name shape its type requires, counters
   non-negative, histogram buckets cumulative with a [+Inf] bucket
   matching [_count]. *)
let validate text =
  try
    let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
    let samples = ref [] in
    let last = ref "" in
    fold_lines text (fun _ line ->
        last := line;
        if line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: fname :: typ :: [] ->
              if not (List.mem typ [ "counter"; "gauge"; "histogram" ]) then
                raise (Bad (Printf.sprintf "unknown type %S" typ));
              if Hashtbl.mem types fname then
                raise (Bad (Printf.sprintf "duplicate TYPE for %s" fname));
              Hashtbl.replace types fname typ
          | "#" :: ("HELP" | "UNIT") :: _ -> ()
          | "#" :: "EOF" :: [] -> ()
          | _ -> raise (Bad (Printf.sprintf "bad comment line %S" line))
        end
        else samples := parse_sample_line line :: !samples);
    if !last <> "# EOF" then raise (Bad "missing terminal # EOF");
    let samples = List.rev !samples in
    let family_of_sample s =
      let try_shape suffix typ =
        match strip_suffix s.name suffix with
        | Some base when Hashtbl.find_opt types base = Some typ -> Some base
        | _ -> None
      in
      match Hashtbl.find_opt types s.name with
      | Some "gauge" -> Some s.name
      | Some _ ->
          None (* counter/histogram samples never use the bare name *)
      | None -> (
          match try_shape "_total" "counter" with
          | Some b -> Some b
          | None -> (
              match try_shape "_bucket" "histogram" with
              | Some b -> Some b
              | None -> (
                  match try_shape "_count" "histogram" with
                  | Some b -> Some b
                  | None -> try_shape "_sum" "histogram")))
    in
    List.iter
      (fun s ->
        match family_of_sample s with
        | None ->
            raise (Bad (Printf.sprintf "sample %s has no declared family" s.name))
        | Some fam ->
            if Hashtbl.find types fam = "counter" && s.value < 0. then
              raise (Bad (Printf.sprintf "negative counter %s" s.name)))
      samples;
    (* Histogram structure: per (family, non-le labels) instance the
       buckets must be cumulative, end at +Inf, and match _count. *)
    let instances : (string * (string * string) list, sample list ref) Hashtbl.t
        =
      Hashtbl.create 16
    in
    List.iter
      (fun s ->
        match strip_suffix s.name "_bucket" with
        | Some base when Hashtbl.find_opt types base = Some "histogram" ->
            let key = (base, List.remove_assoc "le" s.labels) in
            let l =
              match Hashtbl.find_opt instances key with
              | Some l -> l
              | None ->
                  let l = ref [] in
                  Hashtbl.replace instances key l;
                  l
            in
            l := s :: !l
        | _ -> ())
      samples;
    Hashtbl.iter
      (fun (base, labels) buckets ->
        let buckets = List.rev !buckets in
        (match List.rev buckets with
        | last :: _ when List.assoc_opt "le" last.labels = Some "+Inf" -> ()
        | _ -> raise (Bad (Printf.sprintf "%s missing +Inf bucket" base)));
        ignore
          (List.fold_left
             (fun prev b ->
               if b.value < prev then
                 raise (Bad (Printf.sprintf "%s buckets not cumulative" base));
               b.value)
             0. buckets);
        let total = (List.hd (List.rev buckets)).value in
        List.iter
          (fun s ->
            if
              strip_suffix s.name "_count" = Some base && s.labels = labels
              && s.value <> total
            then
              raise
                (Bad (Printf.sprintf "%s _count disagrees with +Inf" base)))
          samples)
      instances;
    Ok samples
  with Bad msg -> Error msg
