type measurement = {
  section : string;
  name : string;
  jobs : int;
  ns_per_op : float;
  throughput : float;
}

let key m = Printf.sprintf "%s/%s/j%d" m.section m.name m.jobs

let to_json ms =
  Json.List
    (List.map
       (fun m ->
         Json.Obj
           [
             ("section", Json.String m.section);
             ("name", Json.String m.name);
             ("jobs", Json.Int m.jobs);
             ("ns_per_op", Json.Float m.ns_per_op);
             ("throughput", Json.Float m.throughput);
           ])
       ms)

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let measurement_of_json j =
  match
    ( Json.member "section" j,
      Json.member "name" j,
      Json.member "jobs" j,
      Option.bind (Json.member "ns_per_op" j) number,
      Option.bind (Json.member "throughput" j) number )
  with
  | ( Some (Json.String section),
      Some (Json.String name),
      Some (Json.Int jobs),
      Some ns_per_op,
      Some throughput ) ->
      Ok { section; name; jobs; ns_per_op; throughput }
  | _ -> Error ("not a bench measurement: " ^ Json.to_string j)

let of_json = function
  | Json.List items ->
      List.fold_left
        (fun acc item ->
          match (acc, measurement_of_json item) with
          | Ok ms, Ok m -> Ok (m :: ms)
          | (Error _ as e), _ -> e
          | _, (Error _ as e) -> e)
        (Ok []) items
      |> Result.map List.rev
  | j -> Error ("expected a JSON array of measurements, got " ^ Json.to_string j)

let write_file path ms =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ms));
      output_char oc '\n')

let read_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Result.bind (Json.parse content) of_json

type regression = { baseline : measurement; current : measurement; ratio : float }

type diff = {
  regressions : regression list;
  compared : int;
  missing : measurement list;
  added : measurement list;
}

let diff ~tolerance ~baseline ~current =
  if tolerance < 0. then invalid_arg "Benchdata.diff: negative tolerance";
  let index ms =
    let tbl = Hashtbl.create (List.length ms) in
    List.iter (fun m -> Hashtbl.replace tbl (key m) m) ms;
    tbl
  in
  let base_tbl = index baseline and cur_tbl = index current in
  let regressions = ref [] and compared = ref 0 in
  (* iterate the lists, not the tables, so report order is input order *)
  List.iter
    (fun b ->
      match Hashtbl.find_opt cur_tbl (key b) with
      | None -> ()
      | Some c ->
          incr compared;
          (* a zero/garbage baseline cannot gate anything meaningfully *)
          if b.ns_per_op > 0. then begin
            let ratio = c.ns_per_op /. b.ns_per_op in
            if ratio > 1. +. tolerance then
              regressions := { baseline = b; current = c; ratio } :: !regressions
          end)
    baseline;
  {
    regressions = List.rev !regressions;
    compared = !compared;
    missing =
      List.filter (fun b -> not (Hashtbl.mem cur_tbl (key b))) baseline;
    added = List.filter (fun c -> not (Hashtbl.mem base_tbl (key c))) current;
  }
