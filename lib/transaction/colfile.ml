(* PPDMC: the on-disk columnar transaction format.

   Layout (all integers little-endian):

     offset 0   6 bytes   magic "PPDMC\x00"
            6   u16       format version (1)
            8   u64       universe
           16   u64       transactions (n)
           24   u64       payload bytes
           32   directory: universe entries of (u64 card, u64 offset,
                           u64 length) — offsets relative to the payload
                           area, so the directory alone locates any
                           item's containers with one seek
     32 + 24u   payload:  per item, its non-empty blocks in ascending
                           block order, each as
                             u32 block index | u8 tag | u16 count | body
                           tag 0 dense  — count 62-bit words as i64
                             1 sparse — count u16 bit offsets
                             2 runs   — count (u16 start, u16 stop) pairs

   The format is mmap-friendly by construction — fixed header, a
   directory of (offset, length) slices, and position-independent
   container payloads — but the reader here uses plain channel seeks:
   one seek + read per item, so a load streams the file without ever
   holding more than one item's containers in flight.  Every value is
   validated on decode; violations raise the typed {!Error}, never a
   partial column. *)

let magic = "PPDMC\x00"
let version = 1
let header_bytes = 32
let dir_entry_bytes = 24

(* A corrupt header must fail with a typed error before any allocation it
   implies.  Decoding one column allocates a block-grid array of
   [n / block_bits] entries even when the payload is tiny, so the cap has
   to keep that grid small enough to always allocate (2^32 transactions
   is ~1.1M blocks, 8.6MB — far past any dataset the in-RAM engines
   could hold anyway): the corruption fuzz flips every header byte and
   demands a typed error, never Out_of_memory. *)
let max_transactions = 1 lsl 32

type error =
  | Bad_magic
  | Unsupported_version of int
  | Truncated of string
  | Corrupt of string

exception Error of error

let error_message = function
  | Bad_magic -> "not a PPDMC columnar file (bad magic)"
  | Unsupported_version v -> Printf.sprintf "unsupported PPDMC version %d" v
  | Truncated what -> Printf.sprintf "truncated PPDMC file (%s)" what
  | Corrupt what -> Printf.sprintf "corrupt PPDMC file (%s)" what

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Colfile.Error: " ^ error_message e)
    | _ -> None)

let fail e = raise (Error e)

(* --- encoding -------------------------------------------------------- *)

let add_u16 buf v = Buffer.add_uint16_le buf v
let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_u64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

type counters = {
  mutable c_blocks : int;
  mutable c_dense : int;
  mutable c_sparse : int;
  mutable c_run : int;
}

let fresh_counters () = { c_blocks = 0; c_dense = 0; c_sparse = 0; c_run = 0 }

let encode_block buf counters ~idx (block : Column.block) =
  match block with
  | Column.Empty -> ()
  | Column.Dense words ->
      counters.c_blocks <- counters.c_blocks + 1;
      counters.c_dense <- counters.c_dense + 1;
      add_u32 buf idx;
      Buffer.add_uint8 buf 0;
      add_u16 buf (Array.length words);
      Array.iter (fun w -> Buffer.add_int64_le buf (Int64.of_int w)) words
  | Column.Sparse (card, packed) ->
      counters.c_blocks <- counters.c_blocks + 1;
      counters.c_sparse <- counters.c_sparse + 1;
      add_u32 buf idx;
      Buffer.add_uint8 buf 1;
      add_u16 buf card;
      for i = 0 to card - 1 do
        add_u16 buf (Column.sparse_get packed i)
      done
  | Column.Runs rs ->
      counters.c_blocks <- counters.c_blocks + 1;
      counters.c_run <- counters.c_run + 1;
      add_u32 buf idx;
      Buffer.add_uint8 buf 2;
      add_u16 buf (Array.length rs);
      Array.iter
        (fun r ->
          add_u16 buf (Column.run_start r);
          add_u16 buf (Column.run_stop r))
        rs

let encode_column buf counters col =
  Array.iteri (fun idx block -> encode_block buf counters ~idx block)
    (Column.blocks col)

let write_out path ~universe ~n ~cards ~payloads =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let header = Buffer.create (header_bytes + (dir_entry_bytes * universe)) in
      Buffer.add_string header magic;
      add_u16 header version;
      add_u64 header universe;
      add_u64 header n;
      let payload_bytes =
        Array.fold_left (fun acc s -> acc + String.length s) 0 payloads
      in
      add_u64 header payload_bytes;
      let off = ref 0 in
      Array.iteri
        (fun i s ->
          add_u64 header cards.(i);
          add_u64 header !off;
          add_u64 header (String.length s);
          off := !off + String.length s)
        payloads;
      Buffer.output_buffer oc header;
      Array.iter (output_string oc) payloads;
      payload_bytes)

let write path ~n columns =
  let universe = Array.length columns in
  if universe = 0 then invalid_arg "Colfile.write: empty universe";
  Array.iter
    (fun c ->
      if Column.length c <> n then
        invalid_arg "Colfile.write: column length mismatch")
    columns;
  let counters = fresh_counters () in
  let payloads =
    Array.map
      (fun c ->
        let buf = Buffer.create 256 in
        encode_column buf counters c;
        Buffer.contents buf)
      columns
  in
  ignore
    (write_out path ~universe ~n ~cards:(Array.map Column.cardinal columns)
       ~payloads)

(* --- reading --------------------------------------------------------- *)

type t = {
  ic : in_channel;
  universe : int;
  n : int;
  payload_pos : int;
  cards : int array;
  offs : int array;
  lens : int array;
  mutable closed : bool;
}

let universe t = t.universe
let length t = t.n

let item_count t item =
  if item < 0 || item >= t.universe then
    invalid_arg "Colfile.item_count: item out of range";
  t.cards.(item)

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_in_noerr t.ic
  end

let really_read ic len ~what =
  let b = Bytes.create len in
  (try really_input ic b 0 len with End_of_file -> fail (Truncated what));
  b

let get_u64 b pos ~what =
  let v = Bytes.get_int64_le b pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    fail (Corrupt (what ^ " out of range"));
  Int64.to_int v

let open_file path =
  let ic = open_in_bin path in
  match
    let total = in_channel_length ic in
    if total < header_bytes then fail (Truncated "header");
    let header = really_read ic header_bytes ~what:"header" in
    if Bytes.sub_string header 0 6 <> magic then fail Bad_magic;
    let v = Bytes.get_uint16_le header 6 in
    if v <> version then fail (Unsupported_version v);
    let universe = get_u64 header 8 ~what:"universe" in
    if universe < 1 then fail (Corrupt "universe must be positive");
    let n = get_u64 header 16 ~what:"transaction count" in
    if n > max_transactions then fail (Corrupt "transaction count out of range");
    let payload_bytes = get_u64 header 24 ~what:"payload size" in
    if total - header_bytes < dir_entry_bytes * universe then
      fail (Truncated "directory");
    let dir = really_read ic (dir_entry_bytes * universe) ~what:"directory" in
    let payload_pos = header_bytes + (dir_entry_bytes * universe) in
    if total < payload_pos + payload_bytes then fail (Truncated "payload");
    if total > payload_pos + payload_bytes then
      fail (Corrupt "trailing bytes after the payload");
    let cards = Array.make universe 0 in
    let offs = Array.make universe 0 in
    let lens = Array.make universe 0 in
    for item = 0 to universe - 1 do
      let base = item * dir_entry_bytes in
      let card = get_u64 dir base ~what:"directory cardinality" in
      let off = get_u64 dir (base + 8) ~what:"directory offset" in
      let len = get_u64 dir (base + 16) ~what:"directory length" in
      if card > n then fail (Corrupt "directory cardinality above n");
      if off + len > payload_bytes then
        fail (Corrupt "directory slice outside the payload");
      cards.(item) <- card;
      offs.(item) <- off;
      lens.(item) <- len
    done;
    { ic; universe; n; payload_pos; cards; offs; lens; closed = false }
  with
  | t -> t
  | exception e ->
      close_in_noerr ic;
      raise e

let max_word = Int64.of_int ((1 lsl Bitset.bits_per_word) - 1)

let column t item =
  if t.closed then invalid_arg "Colfile.column: file closed";
  if item < 0 || item >= t.universe then
    invalid_arg "Colfile.column: item out of range";
  let len = t.lens.(item) in
  seek_in t.ic (t.payload_pos + t.offs.(item));
  let b = really_read t.ic len ~what:"container payload" in
  let n_blocks = Column.n_blocks_for t.n in
  let blocks = Array.make n_blocks Column.Empty in
  let pos = ref 0 in
  let last = ref (-1) in
  while !pos < len do
    if len - !pos < 7 then fail (Corrupt "block header truncated");
    let idx =
      let v = Int32.to_int (Bytes.get_int32_le b !pos) in
      if v < 0 then fail (Corrupt "block index out of range");
      v
    in
    let tag = Bytes.get_uint8 b (!pos + 4) in
    let count = Bytes.get_uint16_le b (!pos + 5) in
    pos := !pos + 7;
    if idx <= !last then fail (Corrupt "block indices not ascending");
    if idx >= n_blocks then fail (Corrupt "block index out of range");
    last := idx;
    let need bytes =
      if len - !pos < bytes then fail (Corrupt "container body truncated")
    in
    let block =
      match tag with
      | 0 ->
          need (8 * count);
          let words =
            Array.init count (fun i ->
                let v = Bytes.get_int64_le b (!pos + (8 * i)) in
                if Int64.compare v 0L < 0 || Int64.compare v max_word > 0 then
                  fail (Corrupt "dense word out of range");
                Int64.to_int v)
          in
          pos := !pos + (8 * count);
          Column.Dense words
      | 1 ->
          need (2 * count);
          let offs =
            Array.init count (fun i -> Bytes.get_uint16_le b (!pos + (2 * i)))
          in
          pos := !pos + (2 * count);
          Column.Sparse (count, Column.pack_offsets offs)
      | 2 ->
          need (4 * count);
          let rs =
            Array.init count (fun i ->
                let s = Bytes.get_uint16_le b (!pos + (4 * i)) in
                let e = Bytes.get_uint16_le b (!pos + (4 * i) + 2) in
                (s lsl 16) lor e)
          in
          pos := !pos + (4 * count);
          Column.Runs rs
      | _ -> fail (Corrupt "unknown container tag")
    in
    blocks.(idx) <- block
  done;
  let col =
    try Column.of_blocks ~n:t.n blocks
    with Invalid_argument msg -> fail (Corrupt msg)
  in
  if Column.cardinal col <> t.cards.(item) then
    fail (Corrupt "directory cardinality disagrees with the containers");
  col

(* --- streaming conversion ------------------------------------------- *)

type convert_stats = {
  cv_universe : int;
  cv_transactions : int;
  cv_payload_bytes : int;
  cv_blocks : int;
  cv_dense : int;
  cv_sparse : int;
  cv_run : int;
}

(* One-pass transpose: transactions stream through Io.fold_transactions
   (the source Db is never resident); each item accumulates the current
   block's bit offsets, and a block is encoded and appended to its
   item's payload buffer the moment the stream crosses a block boundary.
   The working set is one block's offsets plus the growing compressed
   payloads — the memory the *output* needs, not the input. *)
let convert ?universe ~src ~dst () =
  (match universe with
  | Some u when u < 1 -> invalid_arg "Colfile.convert: universe must be positive"
  | _ -> ());
  Ppdm_obs.Span.with_ ~name:"columnar.convert" @@ fun () ->
  let cap = ref (match universe with Some u -> u | None -> 16) in
  let bufs = ref (Array.init !cap (fun _ -> Buffer.create 16)) in
  let cards = ref (Array.make !cap 0) in
  let pending = ref (Array.make !cap []) in
  let touched = ref [] in
  let cur_block = ref 0 in
  let counters = fresh_counters () in
  let grow item =
    if item >= !cap then begin
      let cap' = ref (2 * !cap) in
      while item >= !cap' do
        cap' := 2 * !cap'
      done;
      let bufs' = Array.init !cap' (fun _ -> Buffer.create 16) in
      Array.blit !bufs 0 bufs' 0 !cap;
      let cards' = Array.make !cap' 0 in
      Array.blit !cards 0 cards' 0 !cap;
      let pending' = Array.make !cap' [] in
      Array.blit !pending 0 pending' 0 !cap;
      bufs := bufs';
      cards := cards';
      pending := pending';
      cap := !cap'
    end
  in
  let flush ~wib =
    (* ascending item order inside a block is not required — each item's
       buffer only ever receives its own blocks, in block order *)
    List.iter
      (fun item ->
        let offs = Array.of_list (List.rev (!pending).(item)) in
        (!pending).(item) <- [];
        encode_block (!bufs).(item) counters ~idx:!cur_block
          (Column.block_of_offsets ~wib offs))
      !touched;
    touched := []
  in
  let tid = ref 0 in
  let handle tx =
    let b = !tid / Column.block_bits in
    if b <> !cur_block then begin
      (* the stream moved past it, so the previous block is full-width *)
      flush ~wib:Column.block_words;
      cur_block := b
    end;
    let base = !cur_block * Column.block_bits in
    let off = !tid - base in
    Itemset.iter
      (fun item ->
        (match universe with None -> grow item | Some _ -> ());
        if (!pending).(item) = [] then touched := item :: !touched;
        (!pending).(item) <- off :: (!pending).(item);
        (!cards).(item) <- (!cards).(item) + 1)
      tx;
    incr tid
  in
  let (), info = Io.fold_transactions ?universe src ~init:() ~f:(fun () tx -> handle tx) in
  let n = info.Io.transactions in
  if !touched <> [] then flush ~wib:(Column.words_in_block ~n !cur_block);
  let universe = info.Io.universe in
  let payloads =
    Array.init universe (fun i ->
        if i < !cap then Buffer.contents (!bufs).(i) else "")
  in
  let cards =
    Array.init universe (fun i -> if i < !cap then (!cards).(i) else 0)
  in
  let payload_bytes = write_out dst ~universe ~n ~cards ~payloads in
  if Ppdm_obs.Metrics.enabled () then begin
    Ppdm_obs.Metrics.add "columnar.containers.dense" counters.c_dense;
    Ppdm_obs.Metrics.add "columnar.containers.sparse" counters.c_sparse;
    Ppdm_obs.Metrics.add "columnar.containers.run" counters.c_run;
    Ppdm_obs.Metrics.add "columnar.blocks" counters.c_blocks;
    Ppdm_obs.Metrics.add "columnar.bytes" payload_bytes
  end;
  {
    cv_universe = universe;
    cv_transactions = n;
    cv_payload_bytes = payload_bytes;
    cv_blocks = counters.c_blocks;
    cv_dense = counters.c_dense;
    cv_sparse = counters.c_sparse;
    cv_run = counters.c_run;
  }
