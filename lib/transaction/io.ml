let write_channel oc db =
  Printf.fprintf oc "universe %d transactions %d\n" (Db.universe db)
    (Db.length db);
  Db.iter
    (fun tx ->
      let items = Itemset.to_array tx in
      Array.iteri
        (fun i x ->
          if i > 0 then output_char oc ' ';
          output_string oc (string_of_int x))
        items;
      output_char oc '\n')
    db

let write_file path db =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel oc db)

(* --------------------------------------------------- fault injection *)

(* Test-only: simulate a truncated input by cutting the line stream short.
   All readers below go through the shadowed [input_line], so an armed
   truncation behaves exactly like a file whose tail was lost: the header
   format must fail with its documented exception rather than return a
   partial database. *)
let truncate_after : int option ref = ref None

let inject_read_truncation ~lines =
  if lines < 0 then invalid_arg "Io.inject_read_truncation: negative lines";
  truncate_after := Some lines

let clear_fault_injection () = truncate_after := None

let input_line ic =
  match !truncate_after with
  | None -> Stdlib.input_line ic
  | Some 0 -> raise End_of_file
  | Some k ->
      truncate_after := Some (k - 1);
      Stdlib.input_line ic

let parse_header line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "universe"; n; "transactions"; count ] -> (
      match (int_of_string_opt n, int_of_string_opt count) with
      | Some n, Some count when n > 0 && count >= 0 -> (n, count)
      | _ -> failwith "Io.read: malformed header values")
  | _ -> failwith "Io.read: malformed header"

let parse_transaction ~universe line =
  let tokens =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  in
  let items =
    List.map
      (fun tok ->
        match int_of_string_opt tok with
        | Some x when x >= 0 && x < universe -> x
        | Some _ -> failwith "Io.read: item outside the declared universe"
        | None -> failwith (Printf.sprintf "Io.read: bad item %S" tok))
      tokens
  in
  Itemset.of_list items

(* A corrupted header with too small a count would otherwise silently
   drop the tail of the file; only trailing blank lines are tolerated. *)
let rec check_trailing ic =
  match input_line ic with
  | line ->
      if String.trim line <> "" then
        failwith "Io.read: trailing content after the declared transactions";
      check_trailing ic
  | exception End_of_file -> ()

let read_channel ic =
  let header =
    try input_line ic with End_of_file -> failwith "Io.read: empty input"
  in
  let universe, count = parse_header header in
  let transactions =
    Array.init count (fun _ ->
        let line =
          try input_line ic
          with End_of_file -> failwith "Io.read: fewer transactions than declared"
        in
        parse_transaction ~universe line)
  in
  check_trailing ic;
  Db.create ~universe transactions

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_channel ic)

let write_fimi path db =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Db.iter
        (fun tx ->
          let items = Itemset.to_array tx in
          Array.iteri
            (fun i x ->
              if i > 0 then output_char oc ' ';
              output_string oc (string_of_int x))
            items;
          output_char oc '\n')
        db)

exception Item_out_of_universe of { item : int; universe : int }

let () =
  Printexc.register_printer (function
    | Item_out_of_universe { item; universe } ->
        Some
          (Printf.sprintf "Io.Item_out_of_universe (item %d, universe %d)" item
             universe)
    | _ -> None)

(* One FIMI line: space-separated non-negative item ids.  When a universe
   is known the check happens per item, so an out-of-range id surfaces as
   the typed error the moment it streams past — never silently folded
   into a too-small universe, and never deferred to the end of the
   file. *)
let parse_fimi_line ?universe line =
  let tokens =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  in
  let max_item = ref (-1) in
  let items =
    List.map
      (fun tok ->
        match int_of_string_opt tok with
        | Some x when x >= 0 ->
            (match universe with
            | Some u when x >= u ->
                raise (Item_out_of_universe { item = x; universe = u })
            | _ -> ());
            if x > !max_item then max_item := x;
            x
        | _ -> failwith (Printf.sprintf "Io.read_fimi: bad item %S" tok))
      tokens
  in
  (Itemset.of_list items, !max_item)

let resolve_universe ~declared ~max_item =
  match declared with Some u -> u | None -> max 1 (max_item + 1)

let read_fimi ?universe path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let transactions = ref [] in
      let max_item = ref (-1) in
      (try
         while true do
           let tx, m = parse_fimi_line ?universe (input_line ic) in
           if m > !max_item then max_item := m;
           transactions := tx :: !transactions
         done
       with End_of_file -> ());
      Db.create
        ~universe:(resolve_universe ~declared:universe ~max_item:!max_item)
        (Array.of_list (List.rev !transactions)))

(* --------------------------------------- streaming one-pass folding *)

type stream_info = { universe : int; transactions : int }

(* Sniff by the first line: the header format's first token is
   ["universe"], which can never begin a valid FIMI line (FIMI lines are
   integers only).  Header mode enforces the declared count exactly as
   {!read_channel}; FIMI mode streams to end of file. *)
let fold_transactions ?universe path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match input_line ic with
      | exception End_of_file ->
          let universe = resolve_universe ~declared:universe ~max_item:(-1) in
          (init, { universe; transactions = 0 })
      | first ->
          let is_header =
            match String.split_on_char ' ' (String.trim first) with
            | "universe" :: _ -> true
            | _ -> false
          in
          if is_header then begin
            let declared, count = parse_header first in
            (match universe with
            | Some u when u <> declared ->
                failwith
                  "Io.fold_transactions: universe override disagrees with the \
                   header"
            | _ -> ());
            let acc = ref init in
            for _ = 1 to count do
              let line =
                try input_line ic
                with End_of_file ->
                  failwith "Io.read: fewer transactions than declared"
              in
              acc := f !acc (parse_transaction ~universe:declared line)
            done;
            check_trailing ic;
            (!acc, { universe = declared; transactions = count })
          end
          else begin
            let acc = ref init in
            let max_item = ref (-1) in
            let count = ref 0 in
            let handle line =
              let tx, m = parse_fimi_line ?universe line in
              if m > !max_item then max_item := m;
              incr count;
              acc := f !acc tx
            in
            handle first;
            (try
               while true do
                 handle (input_line ic)
               done
             with End_of_file -> ());
            let universe =
              resolve_universe ~declared:universe ~max_item:!max_item
            in
            (!acc, { universe; transactions = !count })
          end)
