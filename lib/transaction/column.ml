(* Roaring-style compressed tid-set containers.

   A column is the tid-set of one item over [n] transactions, cut into
   fixed-width blocks of [block_words] 62-bit words (3968 tids).  Each
   block independently picks the cheapest of three physical containers —
   dense bitmap, packed sorted offsets, run-length intervals — by its
   serialized size, so the randomization-induced dense regions compress
   as runs while genuinely sparse tails stay as 2-byte offsets.  Every
   kernel below works directly on the chosen containers over an explicit
   word window; nothing is decompressed except into a caller's result
   buffer. *)

let bpw = Bitset.bits_per_word
let block_words = 64
let block_bits = block_words * bpw

(* Quotient by [bpw] for block-relative bit positions.  ocamlopt does not
   strength-reduce division by non-power-of-two constants, and the hot
   kernels divide on every decoded offset; [(off * 16913) lsr 20] equals
   [off / 62] for every off in [0, block_bits] (checked below), at about
   60% of the hardware-divide latency. *)
let div62 off = (off * 16913) lsr 20

let () =
  assert (bpw = 62);
  for off = 0 to block_bits do
    assert (div62 off = off / bpw)
  done

(* Offsets are block-relative bit positions (< block_bits = 3968, so they
   fit u16) packed four per OCaml int, lowest 16 bits first.  Runs are
   half-open [start, stop) intervals packed as [(start lsl 16) lor stop],
   strictly ascending, non-overlapping and non-adjacent. *)
type block =
  | Empty
  | Dense of int array
  | Sparse of int * int array
  | Runs of int array

type t = { n : int; card : int; blocks : block array }

let length t = t.n
let cardinal t = t.card
let word_count t = Bitset.words_for t.n
let blocks t = t.blocks

let sparse_get packed i = (packed.(i lsr 2) lsr ((i land 3) lsl 4)) land 0xFFFF
let run_start v = v lsr 16
let run_stop v = v land 0xFFFF

let make_run ~start ~stop =
  if start < 0 || stop <= start || stop > block_bits then
    invalid_arg "Column.make_run: bad interval";
  (start lsl 16) lor stop

let pack_offsets offs =
  let card = Array.length offs in
  let packed = Array.make ((card + 3) / 4) 0 in
  for i = 0 to card - 1 do
    packed.(i lsr 2) <- packed.(i lsr 2) lor (offs.(i) lsl ((i land 3) lsl 4))
  done;
  packed

(* First index in the packed offsets with an offset >= bound.  The
   bound-0 / bound-past-the-block cases are the common full-window calls
   and skip the search entirely (offsets always lie in [0, block_bits)). *)
let sparse_lower packed card bound =
  if bound <= 0 then 0
  else if bound >= block_bits then card
  else begin
    let lo = ref 0 and hi = ref card in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sparse_get packed mid < bound then lo := mid + 1 else hi := mid
    done;
    !lo
  end

(* First run whose stop is > bound (the first that can intersect
   [bound, ...)). *)
let runs_lower rs bound =
  if bound <= 0 then 0
  else begin
    let lo = ref 0 and hi = ref (Array.length rs) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if run_stop rs.(mid) <= bound then lo := mid + 1 else hi := mid
    done;
    !lo
  end

let full_word = Bitset.last_word_mask ~width:bpw

(* Mask of bits [lo, hi) within one word, 0 <= lo < hi <= bpw. *)
let word_mask ~lo ~hi =
  if hi - lo = bpw then full_word else ((1 lsl (hi - lo)) - 1) lsl lo

(* --- representation choice ----------------------------------------- *)

let count_runs_of_offsets offs =
  let nruns = ref 0 in
  Array.iteri
    (fun i off -> if i = 0 || off <> offs.(i - 1) + 1 then incr nruns)
    offs;
  !nruns

let runs_of_offsets offs nruns =
  let rs = Array.make nruns 0 in
  let k = ref (-1) in
  Array.iteri
    (fun i off ->
      if i = 0 || off <> offs.(i - 1) + 1 then begin
        incr k;
        rs.(!k) <- make_run ~start:off ~stop:(off + 1)
      end
      else rs.(!k) <- (rs.(!k) land lnot 0xFFFF) lor (off + 1))
    offs;
  rs

(* Deterministic container choice by serialized size: dense costs 8 bytes
   per word, sorted offsets 2 bytes each, runs 4 bytes each.  Ties prefer
   offsets over runs over dense, so the choice is a pure function of the
   block's contents. *)
let encode_offsets ~wib offs =
  let card = Array.length offs in
  if card = 0 then Empty
  else begin
    let nruns = count_runs_of_offsets offs in
    let dense_cost = 8 * wib in
    let sparse_cost = 2 * card in
    let run_cost = 4 * nruns in
    if sparse_cost <= run_cost && sparse_cost <= dense_cost then
      Sparse (card, pack_offsets offs)
    else if run_cost < dense_cost then Runs (runs_of_offsets offs nruns)
    else begin
      let words = Array.make wib 0 in
      Array.iter
        (fun off ->
          let w = div62 off in
          words.(w) <- words.(w) lor (1 lsl (off - (w * bpw))))
        offs;
      Dense words
    end
  end

let block_of_offsets ~wib offs = encode_offsets ~wib offs

(* --- construction --------------------------------------------------- *)

let n_blocks_for n =
  let n_words = Bitset.words_for n in
  (n_words + block_words - 1) / block_words

(* Words the block [b] of an [n]-transaction column spans (the last block
   may be short). *)
let words_in_block ~n b =
  min block_words (Bitset.words_for n - (b * block_words))

let of_tids ~n tids =
  if n < 0 then invalid_arg "Column.of_tids: negative n";
  Array.iteri
    (fun i tid ->
      if tid < 0 || tid >= n then invalid_arg "Column.of_tids: tid out of range";
      if i > 0 && tids.(i - 1) >= tid then
        invalid_arg "Column.of_tids: tids not strictly increasing")
    tids;
  let blocks = Array.make (n_blocks_for n) Empty in
  let len = Array.length tids in
  let i = ref 0 in
  while !i < len do
    let b = tids.(!i) / block_bits in
    let stop = (b + 1) * block_bits in
    let j = ref !i in
    while !j < len && tids.(!j) < stop do
      incr j
    done;
    let base = b * block_bits in
    let offs = Array.init (!j - !i) (fun k -> tids.(!i + k) - base) in
    blocks.(b) <- encode_offsets ~wib:(words_in_block ~n b) offs;
    i := !j
  done;
  { n; card = len; blocks }

let of_words ~n words =
  if n < 0 then invalid_arg "Column.of_words: negative n";
  if Array.length words <> Bitset.words_for n then
    invalid_arg "Column.of_words: word count mismatch";
  let blocks =
    Array.init (n_blocks_for n) (fun b ->
        let wib = words_in_block ~n b in
        let offs = ref [] in
        for w = wib - 1 downto 0 do
          let base = w * bpw in
          for bit = bpw - 1 downto 0 do
            if words.((b * block_words) + w) lsr bit land 1 = 1 then
              offs := (base + bit) :: !offs
          done
        done;
        encode_offsets ~wib (Array.of_list !offs))
  in
  let card =
    Array.fold_left (fun acc w -> acc + Bitset.popcount w) 0 words
  in
  (* Tail bits above [n] must already be zero (the packed invariant). *)
  (if Array.length words > 0 then
     let last = Array.length words - 1 in
     if words.(last) land lnot (Bitset.last_word_mask ~width:n) <> 0 then
       invalid_arg "Column.of_words: set bits above n");
  { n; card; blocks }

(* Validating constructor for the on-disk decoder: checks every container
   invariant (ascending offsets, disjoint ascending non-adjacent runs,
   in-range values, zero tail bits) and recomputes the cardinality.
   @raise Invalid_argument on any violation. *)
let of_blocks ~n blocks =
  if n < 0 then invalid_arg "Column.of_blocks: negative n";
  if Array.length blocks <> n_blocks_for n then
    invalid_arg "Column.of_blocks: block count mismatch";
  let card = ref 0 in
  Array.iteri
    (fun b block ->
      let wib = words_in_block ~n b in
      let bits = min block_bits (n - (b * block_bits)) in
      match block with
      | Empty -> ()
      | Dense words ->
          if Array.length words <> wib then
            invalid_arg "Column.of_blocks: dense word count mismatch";
          Array.iteri
            (fun w v ->
              if v < 0 || v > full_word then
                invalid_arg "Column.of_blocks: dense word out of range";
              let valid =
                if w = wib - 1 then Bitset.last_word_mask ~width:bits
                else full_word
              in
              if v land lnot valid <> 0 then
                invalid_arg "Column.of_blocks: dense bits above n";
              card := !card + Bitset.popcount v)
            words
      | Sparse (c, packed) ->
          if c <= 0 || Array.length packed <> (c + 3) / 4 then
            invalid_arg "Column.of_blocks: sparse length mismatch";
          (* bits beyond the last offset in the final packed word must be
             zero so packed equality is content equality *)
          if c land 3 <> 0 && packed.(Array.length packed - 1) lsr ((c land 3) * 16) <> 0
          then invalid_arg "Column.of_blocks: sparse padding not zero";
          for i = 0 to c - 1 do
            let off = sparse_get packed i in
            if off >= bits then
              invalid_arg "Column.of_blocks: sparse offset out of range";
            if i > 0 && sparse_get packed (i - 1) >= off then
              invalid_arg "Column.of_blocks: sparse offsets not increasing"
          done;
          card := !card + c
      | Runs rs ->
          if Array.length rs = 0 then
            invalid_arg "Column.of_blocks: empty run container";
          Array.iteri
            (fun i v ->
              let s = run_start v and e = run_stop v in
              if s >= e || e > bits then
                invalid_arg "Column.of_blocks: run out of range";
              if i > 0 && run_stop rs.(i - 1) >= s then
                invalid_arg "Column.of_blocks: runs not disjoint ascending";
              card := !card + (e - s))
            rs)
    blocks;
  { n; card = !card; blocks }

(* --- inspection ----------------------------------------------------- *)

type rep = R_empty | R_dense | R_sparse | R_run

let rep t b =
  match t.blocks.(b) with
  | Empty -> R_empty
  | Dense _ -> R_dense
  | Sparse _ -> R_sparse
  | Runs _ -> R_run

type stats = {
  blocks : int;
  empty : int;
  dense : int;
  sparse : int;
  run : int;
  bytes : int;
}

let zero_stats = { blocks = 0; empty = 0; dense = 0; sparse = 0; run = 0; bytes = 0 }

let add_stats acc (t : t) =
  Array.fold_left
    (fun acc block ->
      match block with
      | Empty -> { acc with blocks = acc.blocks + 1; empty = acc.empty + 1 }
      | Dense ws ->
          {
            acc with
            blocks = acc.blocks + 1;
            dense = acc.dense + 1;
            bytes = acc.bytes + (8 * Array.length ws);
          }
      | Sparse (_, packed) ->
          {
            acc with
            blocks = acc.blocks + 1;
            sparse = acc.sparse + 1;
            bytes = acc.bytes + (8 * Array.length packed);
          }
      | Runs rs ->
          {
            acc with
            blocks = acc.blocks + 1;
            run = acc.run + 1;
            bytes = acc.bytes + (8 * Array.length rs);
          })
    acc t.blocks

let stats t = add_stats zero_stats t

let mem (t : t) tid =
  if tid < 0 || tid >= t.n then invalid_arg "Column.mem: tid out of range";
  let b = tid / block_bits in
  let off = tid - (b * block_bits) in
  match t.blocks.(b) with
  | Empty -> false
  | Dense ws ->
      let w = div62 off in
      ws.(w) lsr (off - (w * bpw)) land 1 = 1
  | Sparse (card, packed) ->
      let i = sparse_lower packed card off in
      i < card && sparse_get packed i = off
  | Runs rs ->
      let i = runs_lower rs off in
      i < Array.length rs && run_start rs.(i) <= off

let iter_tids f (t : t) =
  Array.iteri
    (fun b block ->
      let base = b * block_bits in
      match block with
      | Empty -> ()
      | Dense ws ->
          Array.iteri
            (fun w v ->
              let v = ref v in
              let wbase = base + (w * bpw) in
              while !v <> 0 do
                let bit = !v land (- !v) in
                f (wbase + Bitset.popcount (bit - 1));
                v := !v land (!v - 1)
              done)
            ws
      | Sparse (card, packed) ->
          for i = 0 to card - 1 do
            f (base + sparse_get packed i)
          done
      | Runs rs ->
          Array.iter
            (fun r ->
              for off = run_start r to run_stop r - 1 do
                f (base + off)
              done)
            rs)
    t.blocks

let to_tids t =
  let out = Array.make t.card 0 in
  let k = ref 0 in
  iter_tids
    (fun tid ->
      out.(!k) <- tid;
      incr k)
    t;
  out

let equal (a : t) (b : t) =
  a.n = b.n && a.card = b.card && a.blocks = b.blocks

(* --- window iteration ----------------------------------------------- *)

(* Walk the blocks intersecting the word window [wlo, whi), handing each
   its block-relative word sub-range [lo, hi). *)
let iter_blocks (_ : t) ~wlo ~whi f =
  if whi > wlo then begin
    let b0 = wlo / block_words and b1 = (whi - 1) / block_words in
    for b = b0 to b1 do
      let base = b * block_words in
      let lo = max wlo base - base and hi = min whi (base + block_words) - base in
      f b ~base ~lo ~hi
    done
  end

let check_window t ~who ~wlo ~whi =
  if wlo < 0 || wlo > whi || whi > word_count t then
    invalid_arg (Printf.sprintf "Column.%s: word window out of range" who)

(* Popcount of a block-local dense word array over the bit range [s, e)
   (block-relative bits, s < e). *)
let count_bits_local ws ~s ~e =
  let fw = div62 s and lw = div62 (e - 1) in
  if fw = lw then
    Bitset.popcount (ws.(fw) land word_mask ~lo:(s - (fw * bpw)) ~hi:(e - (fw * bpw)))
  else begin
    let acc =
      ref (Bitset.popcount (ws.(fw) land word_mask ~lo:(s - (fw * bpw)) ~hi:bpw))
    in
    for w = fw + 1 to lw - 1 do
      acc := !acc + Bitset.popcount ws.(w)
    done;
    !acc + Bitset.popcount (ws.(lw) land word_mask ~lo:0 ~hi:(e - (lw * bpw)))
  end

(* --- window kernels -------------------------------------------------- *)

let window_card (t : t) ~wlo ~whi =
  check_window t ~who:"window_card" ~wlo ~whi;
  let acc = ref 0 in
  iter_blocks t ~wlo ~whi (fun b ~base:_ ~lo ~hi ->
      match t.blocks.(b) with
      | Empty -> ()
      | Dense ws ->
          for w = lo to hi - 1 do
            acc := !acc + Bitset.popcount ws.(w)
          done
      | Sparse (card, packed) ->
          acc :=
            !acc
            + sparse_lower packed card (hi * bpw)
            - sparse_lower packed card (lo * bpw)
      | Runs rs ->
          let lob = lo * bpw and hib = hi * bpw in
          let nr = Array.length rs in
          let i = ref (runs_lower rs lob) in
          let continue = ref true in
          while !continue && !i < nr do
            let s = run_start rs.(!i) and e = run_stop rs.(!i) in
            if s >= hib then continue := false
            else begin
              acc := !acc + (min e hib - max s lob);
              incr i
            end
          done);
  !acc

(* col AND a plain full-width bitmap, cardinality only.  [words] is
   indexed by global word (the vertical engine's scratch/dense layout). *)
let and_words_card (t : t) words ~wlo ~whi =
  check_window t ~who:"and_words_card" ~wlo ~whi;
  let acc = ref 0 in
  iter_blocks t ~wlo ~whi (fun b ~base ~lo ~hi ->
      match t.blocks.(b) with
      | Empty -> ()
      | Dense ws ->
          for w = lo to hi - 1 do
            acc := !acc + Bitset.popcount (ws.(w) land words.(base + w))
          done
      | Sparse (card, packed) ->
          let i0 = sparse_lower packed card (lo * bpw) in
          let i1 = sparse_lower packed card (hi * bpw) in
          if i0 < i1 then begin
            let r = ref (packed.(i0 lsr 2) lsr ((i0 land 3) lsl 4)) in
            let i = ref i0 in
            while !i < i1 do
              let off = !r land 0xFFFF in
              let w = div62 off in
              (* branchless membership: random probes mispredict ~50% *)
              acc := !acc + (words.(base + w) lsr (off - (w * bpw)) land 1);
              incr i;
              if !i < i1 then
                r := if !i land 3 = 0 then packed.(!i lsr 2) else !r lsr 16
            done
          end
      | Runs rs ->
          let lob = lo * bpw and hib = hi * bpw in
          let nr = Array.length rs in
          let i = ref (runs_lower rs lob) in
          let continue = ref true in
          while !continue && !i < nr do
            let s = run_start rs.(!i) and e = run_stop rs.(!i) in
            if s >= hib then continue := false
            else begin
              let s = max s lob and e = min e hib in
              (* count the bitmap's bits inside the run, word by word *)
              let fw = s / bpw and lw = (e - 1) / bpw in
              if fw = lw then
                acc :=
                  !acc
                  + Bitset.popcount
                      (words.(base + fw)
                      land word_mask ~lo:(s - (fw * bpw)) ~hi:(e - (fw * bpw)))
              else begin
                acc :=
                  !acc
                  + Bitset.popcount
                      (words.(base + fw)
                      land word_mask ~lo:(s - (fw * bpw)) ~hi:bpw);
                for w = fw + 1 to lw - 1 do
                  acc := !acc + Bitset.popcount words.(base + w)
                done;
                acc :=
                  !acc
                  + Bitset.popcount
                      (words.(base + lw) land word_mask ~lo:0 ~hi:(e - (lw * bpw)))
              end;
              incr i
            end
          done);
  !acc

(* col AND a plain bitmap, result written into [dst.(wlo..whi-1)] (same
   global indexing); returns the cardinality. *)
let and_words_into (t : t) words dst ~wlo ~whi =
  check_window t ~who:"and_words_into" ~wlo ~whi;
  let acc = ref 0 in
  iter_blocks t ~wlo ~whi (fun b ~base ~lo ~hi ->
      match t.blocks.(b) with
      | Empty -> Array.fill dst (base + lo) (hi - lo) 0
      | Dense ws ->
          for w = lo to hi - 1 do
            let v = ws.(w) land words.(base + w) in
            dst.(base + w) <- v;
            acc := !acc + Bitset.popcount v
          done
      | Sparse (card, packed) ->
          Array.fill dst (base + lo) (hi - lo) 0;
          let i0 = sparse_lower packed card (lo * bpw) in
          let i1 = sparse_lower packed card (hi * bpw) in
          for i = i0 to i1 - 1 do
            let off = sparse_get packed i in
            let lw = div62 off in
            let w = base + lw and bit = 1 lsl (off - (lw * bpw)) in
            if words.(w) land bit <> 0 then begin
              dst.(w) <- dst.(w) lor bit;
              incr acc
            end
          done
      | Runs rs ->
          Array.fill dst (base + lo) (hi - lo) 0;
          let lob = lo * bpw and hib = hi * bpw in
          let nr = Array.length rs in
          let i = ref (runs_lower rs lob) in
          let continue = ref true in
          while !continue && !i < nr do
            let s = run_start rs.(!i) and e = run_stop rs.(!i) in
            if s >= hib then continue := false
            else begin
              let s = max s lob and e = min e hib in
              let fw = s / bpw and lw = (e - 1) / bpw in
              for w = fw to lw do
                let mlo = if w = fw then s - (w * bpw) else 0 in
                let mhi = if w = lw then e - (w * bpw) else bpw in
                let v = words.(base + w) land word_mask ~lo:mlo ~hi:mhi in
                dst.(base + w) <- dst.(base + w) lor v;
                acc := !acc + Bitset.popcount v
              done;
              incr i
            end
          done);
  !acc

(* Probe the tids [tids.(slo..shi-1)] (strictly increasing) for
   membership. *)
let probe_card t tids ~slo ~shi =
  let acc = ref 0 in
  for i = slo to shi - 1 do
    if mem t tids.(i) then incr acc
  done;
  !acc

let probe_into t tids ~slo ~shi dst =
  let len = ref 0 in
  for i = slo to shi - 1 do
    let tid = tids.(i) in
    if mem t tid then begin
      dst.(!len) <- tid;
      incr len
    end
  done;
  !len

(* --- col AND col ----------------------------------------------------- *)

(* Cardinality of the intersection of two blocks over the block-relative
   bit range [lob, hib).  Every pairing stays inside the compressed
   forms: dense x dense is the word AND, run x run is interval
   arithmetic, and the probe/merge pairs decode offsets on the fly. *)
let and_block_card a b ~lob ~hib =
  match (a, b) with
  | Empty, _ | _, Empty -> 0
  | Dense wa, Dense wb ->
      let acc = ref 0 in
      for w = div62 lob to div62 hib - 1 do
        acc := !acc + Bitset.popcount (wa.(w) land wb.(w))
      done;
      !acc
  | Dense ws, Sparse (card, packed) | Sparse (card, packed), Dense ws ->
      let acc = ref 0 in
      let i0 = sparse_lower packed card lob in
      let i1 = sparse_lower packed card hib in
      if i0 < i1 then begin
        (* shift-register decode: load each packed word once, pull the
           next offset out of the low 16 bits *)
        let r = ref (packed.(i0 lsr 2) lsr ((i0 land 3) lsl 4)) in
        let i = ref i0 in
        while !i < i1 do
          let off = !r land 0xFFFF in
          let w = div62 off in
          (* branchless membership: random probes mispredict ~50% *)
          acc := !acc + (ws.(w) lsr (off - (w * bpw)) land 1);
          incr i;
          if !i < i1 then
            r := if !i land 3 = 0 then packed.(!i lsr 2) else !r lsr 16
        done
      end;
      !acc
  | Dense ws, Runs rs | Runs rs, Dense ws ->
      let acc = ref 0 in
      let nr = Array.length rs in
      let i = ref (runs_lower rs lob) in
      let continue = ref true in
      while !continue && !i < nr do
        let s = run_start rs.(!i) and e = run_stop rs.(!i) in
        if s >= hib then continue := false
        else begin
          acc := !acc + count_bits_local ws ~s:(max s lob) ~e:(min e hib);
          incr i
        end
      done;
      !acc
  | Sparse (ca, pa), Sparse (cb, pb) ->
      let i0 = sparse_lower pa ca lob and j0 = sparse_lower pb cb lob in
      let ihi = sparse_lower pa ca hib and jhi = sparse_lower pb cb hib in
      let acc = ref 0 in
      if i0 < ihi && j0 < jhi then begin
        (* merge over shift registers: only the side that advances
           re-decodes, and a decode is one [lsr 16] except at packed-word
           boundaries *)
        let i = ref i0 and j = ref j0 in
        let ra = ref (pa.(i0 lsr 2) lsr ((i0 land 3) lsl 4)) in
        let rb = ref (pb.(j0 lsr 2) lsr ((j0 land 3) lsl 4)) in
        let continue = ref true in
        while !continue do
          let x = !ra land 0xFFFF and y = !rb land 0xFFFF in
          if x < y then begin
            incr i;
            if !i >= ihi then continue := false
            else ra := if !i land 3 = 0 then pa.(!i lsr 2) else !ra lsr 16
          end
          else if y < x then begin
            incr j;
            if !j >= jhi then continue := false
            else rb := if !j land 3 = 0 then pb.(!j lsr 2) else !rb lsr 16
          end
          else begin
            incr acc;
            incr i;
            incr j;
            if !i >= ihi || !j >= jhi then continue := false
            else begin
              ra := if !i land 3 = 0 then pa.(!i lsr 2) else !ra lsr 16;
              rb := if !j land 3 = 0 then pb.(!j lsr 2) else !rb lsr 16
            end
          end
        done
      end;
      !acc
  | Sparse (card, packed), Runs rs | Runs rs, Sparse (card, packed) ->
      let acc = ref 0 in
      let nr = Array.length rs in
      let r = ref (runs_lower rs lob) in
      let i1 = sparse_lower packed card hib in
      for i = sparse_lower packed card lob to i1 - 1 do
        let off = sparse_get packed i in
        while !r < nr && run_stop rs.(!r) <= off do
          incr r
        done;
        if !r < nr && run_start rs.(!r) <= off then incr acc
      done;
      !acc
  | Runs ra, Runs rb ->
      let na = Array.length ra and nb = Array.length rb in
      let i = ref (runs_lower ra lob) and j = ref (runs_lower rb lob) in
      let acc = ref 0 in
      let continue = ref true in
      while !continue && !i < na && !j < nb do
        let sa = max lob (run_start ra.(!i)) and ea = min hib (run_stop ra.(!i)) in
        let sb = max lob (run_start rb.(!j)) and eb = min hib (run_stop rb.(!j)) in
        if sa >= hib || sb >= hib then continue := false
        else begin
          let overlap = min ea eb - max sa sb in
          if overlap > 0 then acc := !acc + overlap;
          if ea <= eb then incr i else incr j
        end
      done;
      !acc

let and_col_card (a : t) (b : t) ~wlo ~whi =
  check_window a ~who:"and_col_card" ~wlo ~whi;
  if a.n <> b.n then invalid_arg "Column.and_col_card: length mismatch";
  let acc = ref 0 in
  iter_blocks a ~wlo ~whi (fun bk ~base:_ ~lo ~hi ->
      acc :=
        !acc
        + and_block_card a.blocks.(bk) b.blocks.(bk) ~lob:(lo * bpw)
            ~hib:(hi * bpw));
  !acc

(* Expand the column's window into [dst] (a plain full-width bitmap):
   every word of [dst.(wlo..whi-1)] is written. *)
let write_into (t : t) dst ~wlo ~whi =
  check_window t ~who:"write_into" ~wlo ~whi;
  iter_blocks t ~wlo ~whi (fun b ~base ~lo ~hi ->
      match t.blocks.(b) with
      | Empty -> Array.fill dst (base + lo) (hi - lo) 0
      | Dense ws -> Array.blit ws lo dst (base + lo) (hi - lo)
      | Sparse (card, packed) ->
          Array.fill dst (base + lo) (hi - lo) 0;
          let i1 = sparse_lower packed card (hi * bpw) in
          for i = sparse_lower packed card (lo * bpw) to i1 - 1 do
            let off = sparse_get packed i in
            let w = base + div62 off in
            dst.(w) <- dst.(w) lor (1 lsl (off - ((w - base) * bpw)))
          done
      | Runs rs ->
          Array.fill dst (base + lo) (hi - lo) 0;
          let lob = lo * bpw and hib = hi * bpw in
          let nr = Array.length rs in
          let i = ref (runs_lower rs lob) in
          let continue = ref true in
          while !continue && !i < nr do
            let s = run_start rs.(!i) and e = run_stop rs.(!i) in
            if s >= hib then continue := false
            else begin
              let s = max s lob and e = min e hib in
              let fw = s / bpw and lw = (e - 1) / bpw in
              for w = fw to lw do
                let mlo = if w = fw then s - (w * bpw) else 0 in
                let mhi = if w = lw then e - (w * bpw) else bpw in
                dst.(base + w) <- dst.(base + w) lor word_mask ~lo:mlo ~hi:mhi
              done;
              incr i
            end
          done)

let to_words t =
  let nw = word_count t in
  let out = Array.make nw 0 in
  write_into t out ~wlo:0 ~whi:nw;
  out

(* AND the column into [dst] in place over the window: dst := dst land
   col.  Used to intersect a second column into a freshly expanded
   one. *)
let and_into_words (t : t) dst ~wlo ~whi =
  check_window t ~who:"and_into_words" ~wlo ~whi;
  iter_blocks t ~wlo ~whi (fun b ~base ~lo ~hi ->
      match t.blocks.(b) with
      | Empty -> Array.fill dst (base + lo) (hi - lo) 0
      | Dense ws ->
          for w = lo to hi - 1 do
            dst.(base + w) <- dst.(base + w) land ws.(w)
          done
      | Sparse (card, packed) ->
          (* walk the offsets once, building each word's mask *)
          let p = ref (sparse_lower packed card (lo * bpw)) in
          for w = lo to hi - 1 do
            let wb = w * bpw in
            let we = wb + bpw in
            let m = ref 0 in
            let continue = ref true in
            while !continue && !p < card do
              let off = sparse_get packed !p in
              if off < we then begin
                m := !m lor (1 lsl (off - wb));
                incr p
              end
              else continue := false
            done;
            dst.(base + w) <- dst.(base + w) land !m
          done
      | Runs rs ->
          let nr = Array.length rs in
          let p = ref (runs_lower rs (lo * bpw)) in
          for w = lo to hi - 1 do
            let wb = w * bpw and we = (w + 1) * bpw in
            let m = ref 0 in
            let q = ref !p in
            let continue = ref true in
            while !continue && !q < nr do
              let s = run_start rs.(!q) and e = run_stop rs.(!q) in
              if s >= we then continue := false
              else begin
                if e > wb then
                  m := !m lor word_mask ~lo:(max s wb - wb) ~hi:(min e we - wb);
                if e <= we then incr q else continue := false
              end
            done;
            p := !q;
            dst.(base + w) <- dst.(base + w) land !m
          done)

(* a AND b over the window, written into [dst.(wlo..whi-1)]; returns the
   cardinality.  The containers themselves stay compressed — only the
   result materializes, and only into the caller's buffer. *)
let and_col_into (a : t) (b : t) dst ~wlo ~whi =
  if a.n <> b.n then invalid_arg "Column.and_col_into: length mismatch";
  write_into a dst ~wlo ~whi;
  and_into_words b dst ~wlo ~whi;
  let acc = ref 0 in
  for w = wlo to whi - 1 do
    acc := !acc + Bitset.popcount dst.(w)
  done;
  !acc
