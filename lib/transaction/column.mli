(** Roaring-style compressed tid-set containers.

    A column is one item's tid-set over [n] transactions, cut into
    fixed-width blocks of {!block_words} 62-bit words ({!block_bits} =
    3968 tids).  Each block independently holds the cheapest of three
    physical containers by serialized size — a dense bitmap (8 bytes per
    word), packed sorted bit offsets (2 bytes each), or run-length
    intervals (4 bytes per run) — so the randomization-induced dense
    regions compress as runs while sparse tails stay as short offset
    lists.  Empty blocks store nothing.

    All counting kernels work {e directly on the compressed containers}
    over an explicit word window [wlo, whi) (the vertical engine's
    sharding unit): dense x dense is a word AND, run x run is interval
    arithmetic, probe/merge pairs decode offsets on the fly.  Nothing is
    decompressed except a result written into a caller's buffer.

    The block type is exposed so the on-disk codec ({!Colfile}) can
    serialize containers verbatim and the test harness can assert
    representation choices; treat the arrays as immutable. *)

val block_words : int
(** Words per block (64). *)

val block_bits : int
(** Tids per block: [block_words * Bitset.bits_per_word] (3968). *)

type block =
  | Empty
  | Dense of int array
      (** One 62-bit word per block word; tail bits above [n] zero. *)
  | Sparse of int * int array
      (** [(card, packed)]: [card] strictly increasing block-relative bit
          offsets, packed four 16-bit values per int, lowest first;
          unused packing positions zero. *)
  | Runs of int array
      (** Half-open [\[start, stop)] intervals packed as
          [(start lsl 16) lor stop]; strictly ascending, disjoint,
          non-adjacent. *)

type t
(** One item's compressed tid-set.  Immutable once built; safe to share
    across domains. *)

val length : t -> int
(** Transactions covered: tids range over [0..length-1]. *)

val cardinal : t -> int
val word_count : t -> int
(** [Bitset.words_for (length t)]. *)

val blocks : t -> block array
(** The physical containers (block [b] covers tids
    [b*block_bits .. (b+1)*block_bits - 1]).  Do not mutate. *)

(** {1 Construction} *)

val of_tids : n:int -> int array -> t
(** From strictly increasing tids in [0..n-1].  Container choice per
    block is deterministic (serialized size, ties prefer offsets over
    runs over dense).
    @raise Invalid_argument on out-of-range or non-increasing tids. *)

val of_words : n:int -> int array -> t
(** From a packed bitmap of [Bitset.words_for n] words.
    @raise Invalid_argument on a length mismatch or set bits above [n]. *)

val of_blocks : n:int -> block array -> t
(** Validating constructor for the on-disk decoder: checks every
    container invariant (lengths, ascending offsets, disjoint ascending
    non-adjacent runs, values below [n], zero padding) and recomputes the
    cardinality.  @raise Invalid_argument on any violation. *)

(** {1 Inspection} *)

type rep = R_empty | R_dense | R_sparse | R_run

val rep : t -> int -> rep
(** Which container block [b] chose. *)

type stats = {
  blocks : int;
  empty : int;
  dense : int;
  sparse : int;
  run : int;
  bytes : int;  (** resident payload bytes across all containers *)
}

val zero_stats : stats
val stats : t -> stats
val add_stats : stats -> t -> stats

val mem : t -> int -> bool
(** @raise Invalid_argument if the tid is outside [0..length-1]. *)

val iter_tids : (int -> unit) -> t -> unit
(** Ascending. *)

val to_tids : t -> int array
val equal : t -> t -> bool

(** {1 Packed-value helpers (for the codec)} *)

val sparse_get : int array -> int -> int
(** Decode offset [i] from a packed offsets array. *)

val pack_offsets : int array -> int array
val run_start : int -> int
val run_stop : int -> int

val make_run : start:int -> stop:int -> int
(** @raise Invalid_argument unless [0 <= start < stop <= block_bits]. *)

val block_of_offsets : wib:int -> int array -> block
(** The deterministic container chooser for one block: ascending
    block-relative bit offsets to the size-cheapest container, where the
    block spans [wib] words (64, or fewer for the final block).  The
    streaming converter encodes each finished block through this. *)

val n_blocks_for : int -> int
(** Blocks a column over [n] transactions occupies. *)

val words_in_block : n:int -> int -> int
(** Words block [b] of an [n]-transaction column spans (the final block
    may be short). *)

(** {1 Window kernels}

    All windows are half-open global word ranges [wlo, whi) within
    [0, word_count]; plain bitmap operands ([words], [dst]) use the same
    global word indexing as the vertical engine's dense tid-sets.
    Results over disjoint windows sum/concatenate exactly, which is what
    lets the 2-D grid shard compressed columns bit-identically.
    @raise Invalid_argument on a window outside [0, word_count]. *)

val window_card : t -> wlo:int -> whi:int -> int
(** Members with tids in the window. *)

val and_words_card : t -> int array -> wlo:int -> whi:int -> int
(** |col AND bitmap| over the window, without materializing. *)

val and_words_into : t -> int array -> int array -> wlo:int -> whi:int -> int
(** [and_words_into t words dst] writes (col AND words) into
    [dst.(wlo..whi-1)] (every window word is written) and returns the
    cardinality. *)

val probe_card : t -> int array -> slo:int -> shi:int -> int
(** How many of [tids.(slo..shi-1)] (strictly increasing) are members. *)

val probe_into : t -> int array -> slo:int -> shi:int -> int array -> int
(** The surviving tids, written to the prefix of [dst]; returns how
    many. *)

val and_col_card : t -> t -> wlo:int -> whi:int -> int
(** |a AND b| over the window, entirely on the compressed containers.
    @raise Invalid_argument if the columns cover different lengths. *)

val and_col_into : t -> t -> int array -> wlo:int -> whi:int -> int
(** (a AND b) written into [dst.(wlo..whi-1)]; returns the cardinality.
    @raise Invalid_argument if the columns cover different lengths. *)

val write_into : t -> int array -> wlo:int -> whi:int -> unit
(** Expand the window into a plain bitmap (every window word written) —
    the one deliberate decompression, used when a caller leaves the
    compressed domain (e.g. Eclat materializing an intersection). *)

val to_words : t -> int array
(** [write_into] over the full width, freshly allocated. *)
