type item = int
type t = item array (* strictly increasing *)

let empty = [||]
let is_empty s = Array.length s = 0

let singleton x =
  if x < 0 then invalid_arg "Itemset.singleton: negative item";
  [| x |]

let dedup_sorted arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = ref 1 in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(!out - 1) then begin
        arr.(!out) <- arr.(i);
        incr out
      end
    done;
    if !out = n then arr else Array.sub arr 0 !out
  end

let of_array arr =
  Array.iter
    (fun x -> if x < 0 then invalid_arg "Itemset.of_array: negative item")
    arr;
  let copy = Array.copy arr in
  Array.sort compare copy;
  dedup_sorted copy

let of_list l = of_array (Array.of_list l)
let of_sorted_array_unchecked arr = arr
let to_list = Array.to_list
let to_array = Array.copy
let unsafe_to_array s = s
let cardinal = Array.length

let mem x s =
  let lo = ref 0 and hi = ref (Array.length s - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid) = x then found := true
    else if s.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let inter a b =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (min la lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    if a.(!i) = b.(!j) then begin
      buf.(!k) <- a.(!i);
      incr k;
      incr i;
      incr j
    end
    else if a.(!i) < b.(!j) then incr i
    else incr j
  done;
  Array.sub buf 0 !k

let inter_size a b =
  let la = Array.length a and lb = Array.length b in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    if a.(!i) = b.(!j) then begin
      incr k;
      incr i;
      incr j
    end
    else if a.(!i) < b.(!j) then incr i
    else incr j
  done;
  !k

let union a b =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    let x =
      if a.(!i) = b.(!j) then begin
        let x = a.(!i) in
        incr i;
        incr j;
        x
      end
      else if a.(!i) < b.(!j) then begin
        let x = a.(!i) in
        incr i;
        x
      end
      else begin
        let x = b.(!j) in
        incr j;
        x
      end
    in
    buf.(!k) <- x;
    incr k
  done;
  while !i < la do
    buf.(!k) <- a.(!i);
    incr k;
    incr i
  done;
  while !j < lb do
    buf.(!k) <- b.(!j);
    incr k;
    incr j
  done;
  Array.sub buf 0 !k

let diff a b =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make la 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    if a.(!i) = b.(!j) then begin
      incr i;
      incr j
    end
    else if a.(!i) < b.(!j) then begin
      buf.(!k) <- a.(!i);
      incr k;
      incr i
    end
    else incr j
  done;
  while !i < la do
    buf.(!k) <- a.(!i);
    incr k;
    incr i
  done;
  Array.sub buf 0 !k

let subset a b = inter_size a b = Array.length a
let add x s = union s (singleton x)
let remove x s = diff s (singleton x)
let equal a b = a = b

let compare a b =
  let c = compare (Array.length a) (Array.length b) in
  if c <> 0 then c else compare a b

let hash s = Hashtbl.hash s
let fold f s init = Array.fold_left (fun acc x -> f x acc) init s
let iter f s = Array.iter f s

let nth s i =
  if i < 0 || i >= Array.length s then invalid_arg "Itemset.nth: out of range";
  s.(i)

let subsets_of_size s k =
  let n = Array.length s in
  if k < 0 || k > n then []
  else begin
    let out = ref [] in
    let current = Array.make k 0 in
    (* Enumerate index combinations in decreasing lexicographic order so the
       accumulated list comes out increasing. *)
    let rec go pos start =
      if pos = k then out := Array.copy current :: !out
      else
        for i = start to n - (k - pos) do
          current.(pos) <- s.(i);
          go (pos + 1) (i + 1)
        done
    in
    go 0 0;
    List.rev !out
  end

let pp fmt s =
  Format.fprintf fmt "{";
  Array.iteri
    (fun i x -> Format.fprintf fmt "%s%d" (if i = 0 then "" else ",") x)
    s;
  Format.fprintf fmt "}"

let to_string s = Format.asprintf "%a" pp s
