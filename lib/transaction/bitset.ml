(* 62 bits per word keeps all arithmetic well inside OCaml's 63-bit ints. *)
let bits_per_word = 62

type t = { width : int; words : int array }

let words_for width = (width + bits_per_word - 1) / bits_per_word

let create ~width =
  if width <= 0 then invalid_arg "Bitset.create: width must be positive";
  { width; words = Array.make (words_for width) 0 }

let width t = t.width

let check_item t item =
  if item < 0 || item >= t.width then
    invalid_arg "Bitset: item outside the width"

let mem item t =
  check_item t item;
  t.words.(item / bits_per_word) lsr (item mod bits_per_word) land 1 = 1

let add item t =
  check_item t item;
  let words = Array.copy t.words in
  let w = item / bits_per_word in
  words.(w) <- words.(w) lor (1 lsl (item mod bits_per_word));
  { t with words }

let remove item t =
  check_item t item;
  let words = Array.copy t.words in
  let w = item / bits_per_word in
  words.(w) <- words.(w) land lnot (1 lsl (item mod bits_per_word));
  { t with words }

let of_itemset ~width set =
  let t = create ~width in
  Itemset.iter
    (fun item ->
      if item >= width then invalid_arg "Bitset.of_itemset: item outside width";
      let w = item / bits_per_word in
      t.words.(w) <- t.words.(w) lor (1 lsl (item mod bits_per_word)))
    set;
  t

(* Branch-free SWAR popcount: no table, no lazy init, no loads — the
   counting engines call this once per word of every intersection.  The
   64-bit masks do not fit OCaml's 63-bit int literals, so each is built
   from two 32-bit halves; the patterns (and the algorithm) remain correct
   for any 63-bit word because [lsr] shifts in zeros and the top 7-bit
   "byte" of the final multiply can hold counts up to 63. *)
let m1 = (0x55555555 lsl 32) lor 0x55555555
let m2 = (0x33333333 lsl 32) lor 0x33333333
let m4 = (0x0F0F0F0F lsl 32) lor 0x0F0F0F0F
let h01 = (0x01010101 lsl 32) lor 0x01010101

let popcount v =
  let v = v - ((v lsr 1) land m1) in
  let v = (v land m2) + ((v lsr 2) land m2) in
  let v = (v + (v lsr 4)) land m4 in
  (v * h01) lsr 56

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let check_widths name a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bitset.%s: width mismatch" name)

let zip name f a b =
  check_widths name a b;
  { a with words = Array.mapi (fun i w -> f w b.words.(i)) a.words }

let union = zip "union" ( lor )
let inter = zip "inter" ( land )
let diff = zip "diff" (fun x y -> x land lnot y)

(* The one definition of the trailing-word mask: every packed
   representation in the repo (this module, the vertical engine's
   bitmaps, the columnar containers) keeps the bits above its width
   zero, and this is the mask they zero against. *)
let last_word_mask ~width =
  if width <= 0 then invalid_arg "Bitset.last_word_mask: width must be positive";
  let tail = width mod bits_per_word in
  if tail = 0 then (1 lsl bits_per_word) - 1 else (1 lsl tail) - 1

let complement t =
  (* [lnot] also sets the bits above the width (up to OCaml's 63); mask
     both the word width and the partial tail word so the all-zero-padding
     invariant every other operation relies on still holds. *)
  let full = (1 lsl bits_per_word) - 1 in
  let words = Array.map (fun w -> lnot w land full) t.words in
  let last = Array.length words - 1 in
  words.(last) <- words.(last) land last_word_mask ~width:t.width;
  { t with words }

let inter_cardinal a b =
  check_widths "inter_cardinal" a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let subset a b =
  check_widths "subset" a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let equal a b = a.width = b.width && a.words = b.words
let is_empty t = Array.for_all (( = ) 0) t.words

let fold f t init =
  let acc = ref init in
  for item = 0 to t.width - 1 do
    if t.words.(item / bits_per_word) lsr (item mod bits_per_word) land 1 = 1
    then acc := f item !acc
  done;
  !acc

let to_itemset t =
  Itemset.of_sorted_array_unchecked
    (Array.of_list (List.rev (fold (fun i acc -> i :: acc) t [])))

let pp fmt t = Itemset.pp fmt (to_itemset t)
