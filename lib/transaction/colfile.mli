(** PPDMC — the on-disk columnar transaction format.

    A PPDMC file is the transposed, compressed form of a transaction
    database: per item, its {!Column.t} containers, behind a fixed
    header and a directory of [(cardinality, offset, length)] slices.
    The layout is mmap-friendly (position-independent payloads located
    by one directory lookup), and the reader needs one seek + one read
    per item, so a vertical load streams the file without the row-major
    database ever being resident.

    Layout (integers little-endian):
    {v
    0   6B   magic "PPDMC\x00"
    6   u16  version (1)
    8   u64  universe
    16  u64  transactions
    24  u64  payload bytes
    32  directory: universe x (u64 card, u64 offset, u64 length)
    ..  payload: per item, ascending blocks of
        u32 block index | u8 tag | u16 count | body
        tag 0 dense (count i64 words) / 1 sparse (count u16 offsets)
        / 2 runs (count u16 start,stop pairs)
    v}

    Every decode path validates what it reads and raises the typed
    {!Error} — a corrupt or truncated file never yields a partial
    column. *)

type error =
  | Bad_magic  (** Not a PPDMC file. *)
  | Unsupported_version of int
  | Truncated of string  (** The file ends before [what] is complete. *)
  | Corrupt of string  (** Structurally invalid content. *)

exception Error of error

val error_message : error -> string

(** {1 Reading} *)

type t
(** An open columnar file: header + directory resident, container
    payloads read on demand. *)

val open_file : string -> t
(** Validates the header, directory bounds, and total file size.
    @raise Error on any violation.
    @raise Sys_error if the file cannot be opened. *)

val universe : t -> int
val length : t -> int
(** Transactions covered. *)

val item_count : t -> int -> int
(** Directory cardinality of an item, without touching its payload. *)

val column : t -> int -> Column.t
(** Seek to and decode one item's containers.  The result passes
    {!Column.of_blocks} validation and is cross-checked against the
    directory cardinality.
    @raise Error on corrupt container data.
    @raise Invalid_argument if the item is out of range or the file is
    closed. *)

val close : t -> unit
(** Idempotent. *)

(** {1 Writing} *)

val write : string -> n:int -> Column.t array -> unit
(** Serialize already-built columns (item [i] = [columns.(i)]); mainly
    for tests — the CLI path is {!convert}.
    @raise Invalid_argument on an empty array or a length mismatch. *)

type convert_stats = {
  cv_universe : int;
  cv_transactions : int;
  cv_payload_bytes : int;
  cv_blocks : int;  (** non-empty containers written *)
  cv_dense : int;
  cv_sparse : int;
  cv_run : int;
}

val convert : ?universe:int -> src:string -> dst:string -> unit -> convert_stats
(** One-pass streaming transpose of a transaction file (FIMI or header
    format, sniffed by {!Io.fold_transactions}) into a PPDMC file.  The
    source database is never resident: each item accumulates only the
    current 3968-tid block's offsets, and blocks are compressed the
    moment the stream crosses a block boundary.  Emits the
    ["columnar.convert"] span and [columnar.*] counters when observation
    is enabled.
    @raise Failure / {!Io.Item_out_of_universe} as
    {!Io.fold_transactions}.
    @raise Invalid_argument if [universe < 1].
    @raise Sys_error on I/O failure. *)
