(** Itemsets: immutable sets of items, an item being a non-negative
    integer id.  The representation is a strictly increasing int array,
    which makes the set operations the miners and randomizers run in tight
    loops (intersection size, subset test, merge) linear-time and
    allocation-light. *)

type t
(** An immutable itemset. *)

type item = int

val empty : t
val is_empty : t -> bool
val singleton : item -> t

val of_list : item list -> t
(** Sorts and deduplicates.  @raise Invalid_argument on a negative item. *)

val of_array : item array -> t
(** Sorts and deduplicates a copy; the argument is not modified. *)

val of_sorted_array_unchecked : item array -> t
(** Adopts the array without copying.  The caller promises it is strictly
    increasing and non-negative; violated promises break the set
    operations silently.  Used on hot paths only. *)

val to_list : t -> item list
val to_array : t -> item array
(** Fresh array, strictly increasing. *)

val unsafe_to_array : t -> item array
(** The underlying array itself, no copy.  Strictly read-only: mutating it
    breaks every set operation silently.  For hot per-transaction loops
    (trie walks, vertical loads) where {!to_array}'s defensive copy per
    call dominates. *)

val cardinal : t -> int
val mem : item -> t -> bool
val add : item -> t -> t
val remove : item -> t -> t

val subset : t -> t -> bool
(** [subset a b] is true iff every item of [a] is in [b]. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val inter_size : t -> t -> int
(** [inter_size a b = cardinal (inter a b)] without building the set. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: by cardinality, then lexicographic.  Suitable for maps. *)

val hash : t -> int

val fold : (item -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (item -> unit) -> t -> unit

val nth : t -> int -> item
(** [nth s i] is the [i]-th smallest item.  @raise Invalid_argument if out
    of range. *)

val subsets_of_size : t -> int -> t list
(** All sub-itemsets of the given cardinality (used by tests and by the
    rule generator on small sets). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
