(** Plain-text serialization of transaction databases.

    Format: a header line ["universe <n> transactions <count>"] followed by
    one line per transaction of space-separated item ids (an empty
    transaction is an empty line).  Human-inspectable and diff-friendly. *)

val write_channel : out_channel -> Db.t -> unit
val write_file : string -> Db.t -> unit

val read_channel : in_channel -> Db.t
(** Reads to the end of the channel.  @raise Failure on malformed input
    (bad header, non-integer item, item outside the declared universe,
    fewer transactions than declared, or trailing non-blank content after
    the declared count — either direction of a count/body mismatch is an
    error, so a truncated or corrupted header never silently under-reads
    the file). *)

val read_file : string -> Db.t

(** {1 FIMI format}

    The header-less format of the FIMI repository datasets
    (fimi.uantwerpen.be): one transaction per line, space-separated item
    ids, nothing else.  The universe is not declared, so reading infers it
    as [max item + 1] (or takes an explicit override for compatibility
    with a known dataset). *)

val write_fimi : string -> Db.t -> unit

exception Item_out_of_universe of { item : int; universe : int }
(** A FIMI stream carried an item id at or above the declared universe.
    Typed (unlike the [Failure]-based parse errors) because callers that
    stream untrusted data — `ppdm convert`, the columnar transpose —
    need to distinguish "this database does not fit the declared shape"
    from a syntax error. *)

val read_fimi : ?universe:int -> string -> Db.t
(** @raise Failure on non-integer tokens.
    @raise Item_out_of_universe the moment an item at or above an
    explicitly given [universe] is read — an out-of-range item is never
    silently folded into a too-small universe.  An empty file yields an
    empty database over a 1-item universe. *)

type stream_info = { universe : int; transactions : int }

val fold_transactions :
  ?universe:int -> string -> init:'a -> f:('a -> Itemset.t -> 'a) -> 'a * stream_info
(** Stream a transaction file through [f] one line at a time — the
    source database is never resident, which is what lets the columnar
    converter transpose files larger than RAM.  The format is sniffed
    from the first line: a line whose first token is ["universe"] selects
    the header format (declared universe and count enforced exactly as
    {!read_channel}); anything else is FIMI.  Returns the fold result
    plus the resolved universe (declared, overridden, or inferred as
    max item + 1) and the number of transactions folded.
    @raise Failure as {!read_channel}/{!read_fimi}, or if a [universe]
    override disagrees with a header's declared universe.
    @raise Item_out_of_universe as {!read_fimi} (FIMI mode only; header
    mode keeps its documented [Failure]). *)

(** {1 Deterministic fault injection (testing)}

    The verification harness ([ppdm_check]) uses these to prove that a
    truncated input surfaces as the documented [Failure] and never as a
    silently partial database.  [inject_read_truncation ~lines] makes
    every subsequent read in this process behave as if its input ended
    after [lines] more lines (the header line counts); it stays armed (at
    zero) until {!clear_fault_injection}.  Under truncation the header
    format fails with ["fewer transactions than declared"] (or ["empty
    input"]), while the FIMI format — which declares no count — yields a
    shorter database with no error: the asymmetry that motivates the
    header format for anything that crosses a network.  Test-only;
    process-global; always disarm in a [finally]. *)

val inject_read_truncation : lines:int -> unit
(** @raise Invalid_argument if [lines < 0]. *)

val clear_fault_injection : unit -> unit
(** Disarm (idempotent). *)
