(** Fixed-width bitsets over the item universe: the dense counterpart of
    {!Itemset} for workloads where transactions cover a large fraction of
    the universe (dense databases, small universes).  Provides the same
    set algebra with word-parallel operations and popcount-based
    cardinalities. *)

type t
(** A mutable-free bitset of a fixed [width]; items are [0..width-1]. *)

val create : width:int -> t
(** The empty bitset.  @raise Invalid_argument if [width <= 0]. *)

val width : t -> int

val of_itemset : width:int -> Itemset.t -> t
(** @raise Invalid_argument if an item is outside [0..width-1]. *)

val to_itemset : t -> Itemset.t

val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool

val bits_per_word : int
(** How many bits each word of the packed representation carries (62: all
    word arithmetic stays inside OCaml's immediate ints). *)

val words_for : int -> int
(** How many words a packed set of the given width occupies:
    [ceil (width / bits_per_word)] (0 for width 0). *)

val last_word_mask : width:int -> int
(** The bits the final word of a packed set of [width] bits actually
    uses: all [bits_per_word] bits when the width is a multiple, the low
    [width mod bits_per_word] bits otherwise.  Every packed
    representation (this module, the vertical engine, the columnar
    containers) keeps the bits above its width zero; this is the single
    definition of the mask they zero against.
    @raise Invalid_argument if [width <= 0]. *)

val popcount : int -> int
(** Population count of a single word: branch-free SWAR, no table.
    Correct for any value a 63-bit OCaml int can hold; the packed
    representations here only ever store [bits_per_word]-bit words.
    Shared with the vertical counting engine ({!Ppdm_mining.Vertical}). *)

val cardinal : t -> int
(** Population count. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val complement : t -> t
(** Every item of [0..width-1] not in the set:
    [mem i (complement t) = not (mem i t)].  Satisfies
    [diff a b = inter a (complement b)] and
    [cardinal (complement t) = width t - cardinal t]. *)

val inter_cardinal : t -> t -> int
(** [cardinal (inter a b)] without allocating the intersection — the hot
    operation of dense partial-support counting. *)

val subset : t -> t -> bool
val equal : t -> t -> bool
val is_empty : t -> bool

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val pp : Format.formatter -> t -> unit
