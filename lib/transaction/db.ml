type t = { universe : int; transactions : Itemset.t array }

let create ~universe transactions =
  if universe <= 0 then invalid_arg "Db.create: universe must be positive";
  Array.iter
    (fun tx ->
      if (not (Itemset.is_empty tx)) && Itemset.nth tx (Itemset.cardinal tx - 1) >= universe
      then invalid_arg "Db.create: item outside the universe")
    transactions;
  { universe; transactions }

let universe db = db.universe
let length db = Array.length db.transactions

let get db i =
  if i < 0 || i >= length db then invalid_arg "Db.get: index out of bounds";
  db.transactions.(i)

let transactions db = db.transactions
let iter f db = Array.iter f db.transactions
let iteri f db = Array.iteri f db.transactions
let fold f init db = Array.fold_left f init db.transactions
let map f db = { db with transactions = Array.map f db.transactions }

let filter p db =
  {
    db with
    transactions =
      Array.of_list (List.filter p (Array.to_list db.transactions));
  }

let sub db ~pos ~len =
  { db with transactions = Array.sub db.transactions pos len }

let append a b =
  if a.universe <> b.universe then invalid_arg "Db.append: universe mismatch";
  { a with transactions = Array.append a.transactions b.transactions }

let support_count db a =
  fold (fun acc tx -> if Itemset.subset a tx then acc + 1 else acc) 0 db

let support db a =
  if length db = 0 then 0.
  else float_of_int (support_count db a) /. float_of_int (length db)

let partial_support_counts db a =
  let k = Itemset.cardinal a in
  let counts = Array.make (k + 1) 0 in
  iter
    (fun tx ->
      let l = Itemset.inter_size a tx in
      counts.(l) <- counts.(l) + 1)
    db;
  counts

let item_counts db =
  let counts = Array.make db.universe 0 in
  iter (Itemset.iter (fun x -> counts.(x) <- counts.(x) + 1)) db;
  counts

let size_histogram db =
  let tbl = Hashtbl.create 16 in
  iter
    (fun tx ->
      let m = Itemset.cardinal tx in
      Hashtbl.replace tbl m (1 + Option.value ~default:0 (Hashtbl.find_opt tbl m)))
    db;
  (* Sizes are unique keys, so sort on them alone; polymorphic [compare]
     over the pairs would also inspect the counts. *)
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let density db =
  if length db = 0 then 0.
  else
    float_of_int (fold (fun acc tx -> acc + Itemset.cardinal tx) 0 db)
    /. float_of_int (length db * db.universe)

let split db ~at =
  if at < 0 || at > length db then invalid_arg "Db.split: index out of bounds";
  ( { db with transactions = Array.sub db.transactions 0 at },
    { db with transactions = Array.sub db.transactions at (length db - at) } )

let avg_size db =
  if length db = 0 then 0.
  else
    float_of_int (fold (fun acc tx -> acc + Itemset.cardinal tx) 0 db)
    /. float_of_int (length db)

let item_frequency_quantiles db qs =
  if length db = 0 then invalid_arg "Db.item_frequency_quantiles: empty database";
  let n = float_of_int (length db) in
  let freqs = Array.map (fun c -> float_of_int c /. n) (item_counts db) in
  (* Stats lives above this library, so compute the quantiles locally with
     the same interpolation convention. *)
  let sorted = Array.copy freqs in
  Array.sort Float.compare sorted;
  List.map
    (fun q ->
      if q < 0. || q > 1. then
        invalid_arg "Db.item_frequency_quantiles: quantile out of [0,1]";
      let pos = q *. float_of_int (Array.length sorted - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = min (lo + 1) (Array.length sorted - 1) in
      let frac = pos -. float_of_int lo in
      ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi)))
    qs
