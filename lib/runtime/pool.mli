(** A fixed-size pool of OCaml domains with deterministic fan-out.

    The pool is the execution substrate of the parallel runtime: create it
    once (domain spawn is expensive), reuse it across calls, shut it down
    at the end.  [create ~jobs:1] (or less) spawns no domains at all and
    every primitive degrades to plain sequential execution — callers never
    branch on the job count themselves.

    {2 Determinism contract}

    Parallel output is bit-identical to sequential output at any job
    count.  Three rules make this hold, and every primitive obeys them:

    + work is cut into chunks of a {e fixed} size — never a size computed
      from the job count;
    + chunk [i] draws randomness only from [Rng.derive rng ~index:i], a
      child stream that is a pure function of the caller's generator state
      and the chunk index, not of scheduling;
    + results are combined in chunk-index order (a left fold), regardless
      of completion order.

    A worker exception cancels nothing structurally: remaining tasks still
    run, the first exception is re-raised in the caller once the batch has
    drained, and the pool remains usable — workers never die.

    {2 Schedulers}

    Batches run under one of two schedulers ({!sched}):

    - {b Chunked} (default): every task goes through one shared queue and
      domains take the next task as they free up — the PR 1 behaviour.
    - {b Stealing}: the batch is pre-split into one contiguous per-worker
      deque; an owner drains its deque front-to-back while idle workers
      steal from the {e back} of a pseudo-randomly chosen victim.  Built
      for skewed batches (2-D counting grids where some cells are much
      denser than others): a worker stuck on a heavy cell loses its
      remaining cells to idle thieves instead of serializing the batch.

    The scheduler moves {e which domain} runs a task, never what the task
    computes or how results are combined — tasks write to per-index slots
    and the caller reduces in task order — so the determinism contract
    holds identically under both, and output is byte-identical across
    schedulers, job counts, and the sequential fallback.  Observability:
    stealing batches count [pool.steals], [pool.steal_failures] and
    per-worker [pool.cells.w<i>]; stolen cells get a [pool.task.stolen]
    trace slice; queue waits land on the {e executing} worker's
    [pool.queue_wait_ns.w<i>] histogram in both modes. *)

open Ppdm_prng

type t
(** A pool of domains.  Not reentrant: do not call pool primitives from
    inside a task running on the same pool. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains; the caller itself
    acts as the remaining worker while a batch runs, so a batch uses
    [jobs] domains of compute in total.  [jobs <= 1] spawns nothing and
    makes every primitive sequential. *)

val jobs : t -> int
(** The job count the pool was created with (minimum 1). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Pending tasks of an in-flight
    batch are drained first.  Using the pool after shutdown runs
    everything sequentially in the caller. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] creates a pool, applies [f], and shuts the pool
    down whether [f] returns or raises. *)

val default_chunk : int
(** Chunk size used when [?chunk] is omitted (1024 work items).  A fixed
    constant by design: chunking must not depend on the job count, or
    outputs would differ across job counts. *)

type sched = Chunked | Stealing
(** How a batch is distributed over the pool's domains (see the module
    preamble).  Output never depends on the choice. *)

(** {2 Deterministic fault injection (testing)}

    The verification harness ([ppdm_check]) proves that a task failure
    surfaces as an exception in the caller with no deadlock, no lost
    sibling tasks, and no dead pool.  [inject_task_failure ~k] arms a
    one-shot fault: counting every task subsequently submitted to any
    pool primitive (across batches) in submission order, the [k]-th task
    raises {!Injected_fault} instead of running its body.  Counting
    happens at submission time on the caller's thread, so the choice of
    failing task is independent of domain scheduling and job count.
    Test-only: the armed state is process-global and not synchronized
    against concurrent submitters; always disarm in a [finally]. *)

exception Injected_fault of string

val inject_task_failure : k:int -> unit
(** Arm the one-shot fault at the [k]-th subsequently submitted task
    (0-based).  @raise Invalid_argument if [k < 0]. *)

val clear_fault_injection : unit -> unit
(** Disarm (idempotent). *)

val run : ?sched:sched -> t -> (unit -> 'a) array -> 'a array
(** [run pool tasks] executes every task (on whatever domain), returning
    their results in task order.  If tasks raise, every task still runs
    and the first exception (in completion order) is re-raised after the
    batch drains — under [Stealing] too: an injected or organic failure
    in a stolen cell propagates exactly like any other, after the whole
    batch (including the thieves' deques) has quiesced.  For
    deterministic randomized work, prefer {!map_reduce} / {!map_array},
    which handle seeding. *)

val map_reduce :
  t ->
  rng:Rng.t ->
  n:int ->
  ?chunk:int ->
  map:(Rng.t -> pos:int -> len:int -> 'b) ->
  reduce:('b -> 'b -> 'b) ->
  unit ->
  'b option
(** [map_reduce pool ~rng ~n ~map ~reduce ()] cuts [0..n-1] into chunks,
    calls [map child ~pos ~len] for each — [child] being the chunk's
    derived generator — and left-folds the chunk results with [reduce] in
    chunk-index order.  [None] iff [n = 0].  [rng] is advanced exactly
    once (by one draw), identically at every job count, so consecutive
    calls see fresh randomness.
    @raise Invalid_argument if [n < 0] or [chunk <= 0]. *)

val map_array :
  t ->
  rng:Rng.t ->
  ?chunk:int ->
  f:(Rng.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** [map_array pool ~rng ~f arr] is [Array.map] with per-chunk derived
    generators: element [i] is transformed with its chunk's child stream,
    elements within a chunk strictly in index order.  Advances [rng] once,
    like {!map_reduce}.
    @raise Invalid_argument if [chunk <= 0]. *)
