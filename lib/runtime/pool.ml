open Ppdm_prng

(* Tasks on the queue never raise: submission wraps them so a worker
   survives anything a task does — that is what keeps the pool reusable
   after a failure (and what makes shutdown unconditional). *)
type task = unit -> unit

(* ------------------------------------------------------- observability *)

(* Which pool worker this domain is: 0 for the caller (it helps drain the
   queue), i >= 1 for spawned workers.  Only used to label the per-domain
   busy-time counters. *)
let worker_id_key = Domain.DLS.new_key (fun () -> 0)

(* Run one task under metrics (callers check the enabled flag first so the
   disabled path stays a single branch).  [queued_at] is the submission
   timestamp; its distance to the dequeue time is the queue wait.  The
   wait is attributed to the worker that {e executes} the task — read
   from the executing domain's DLS at dequeue time — so under stealing a
   stolen task lands on the thief's histogram, not its home worker's, and
   the per-worker busy fractions stay truthful. *)
let timed_task ?queued_at f =
  let t0 = Ppdm_obs.Metrics.now_ns () in
  let id = Domain.DLS.get worker_id_key in
  (match queued_at with
  | Some t ->
      let wait = t0 - t in
      Ppdm_obs.Metrics.observe "pool.queue_wait_ns" wait;
      Ppdm_obs.Metrics.observe
        ("pool.queue_wait_ns.w" ^ string_of_int id)
        wait
  | None -> ());
  Ppdm_obs.Metrics.incr "pool.tasks";
  Fun.protect f ~finally:(fun () ->
      Ppdm_obs.Metrics.add
        ("pool.busy_ns.w" ^ string_of_int id)
        (Ppdm_obs.Metrics.now_ns () - t0))

(* --------------------------------------------------- fault injection *)

exception Injected_fault of string

(* Armed fault plan: [Some k] means the k-th task subsequently submitted
   (counted across batches, in submission order on the caller's thread)
   raises instead of running its body.  Submission-order counting is what
   makes the failing task independent of domain scheduling. *)
let fault_countdown : int option ref = ref None

let inject_task_failure ~k =
  if k < 0 then invalid_arg "Pool.inject_task_failure: negative k";
  fault_countdown := Some k

let clear_fault_injection () = fault_countdown := None

let take_fault () =
  match !fault_countdown with
  | None -> false
  | Some 0 ->
      fault_countdown := None;
      true
  | Some k ->
      fault_countdown := Some (k - 1);
      false

let injected_task () = raise (Injected_fault "Pool: injected task failure")

(* ------------------------------------------------------- scheduling *)

type sched = Chunked | Stealing

(* One worker's share of a stealing batch: a contiguous slice of the
   task array tracked by two cursors.  The owner consumes from the front
   (its tasks in submission order), thieves take from the back (the work
   the owner is farthest from reaching).  A plain mutex per deque: batch
   cells are coarse by construction (the grid planner sizes them to an L2
   footprint), so the lock is uncontended and the simplicity is free. *)
type deque = {
  d_lock : Mutex.t;
  mutable front : int;
  mutable back : int; (* unclaimed tasks are [front, back) *)
}

let deque_pop_own d =
  Mutex.lock d.d_lock;
  let r =
    if d.front < d.back then begin
      let i = d.front in
      d.front <- d.front + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.d_lock;
  r

let deque_steal d =
  Mutex.lock d.d_lock;
  let r =
    if d.front < d.back then begin
      d.back <- d.back - 1;
      Some d.back
    end
    else None
  in
  Mutex.unlock d.d_lock;
  r

type t = {
  jobs : int;
  mutable workers : unit Domain.t array; (* jobs - 1 spawned domains *)
  queue : task Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopped : bool;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.stopped do
    Condition.wait pool.work_available pool.lock
  done;
  match Queue.take_opt pool.queue with
  | None ->
      (* stopped with an empty queue *)
      Mutex.unlock pool.lock
  | Some task ->
      Mutex.unlock pool.lock;
      task ();
      worker_loop pool

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    {
      jobs;
      workers = [||];
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopped = false;
    }
  in
  (* The workers must capture [pool] itself (they poll [stopped] and share
     the queue), so the field is filled in after construction. *)
  if jobs > 1 then
    pool.workers <-
      Array.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set worker_id_key (i + 1);
              worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.lock;
  if pool.stopped then Mutex.unlock pool.lock
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers
  end

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run every closure in [fns]; collect the first exception rather than
   letting it kill a worker, and re-raise it in the caller only after the
   whole batch has drained (so the pool is quiescent again). *)
let run_all ?(sched = Chunked) pool fns =
  (* Decide fault substitution here, on the caller's thread and in task
     order, so which task fails is deterministic at any job count.  The
     replaced task raises through the normal collection path below: the
     batch drains, the exception re-raises in the caller, the pool stays
     usable — exactly what the verification harness asserts. *)
  let fns =
    if !fault_countdown = None then fns
    else Array.map (fun f -> if take_fault () then injected_task else f) fns
  in
  let n = Array.length fns in
  (* Sampled once per batch: flipping either flag mid-batch must not tear
     a batch's metrics or leave a begin event without its end. *)
  let instrument = Ppdm_obs.Metrics.enabled () in
  let traced = Ppdm_obs.Trace.enabled () in
  (* Task begin/end land on the executing domain's timeline lane; the
     submit instants (parallel path below) land on the caller's. *)
  let run_task ?queued_at f =
    if traced then
      Ppdm_obs.Trace.with_ ~name:"pool.task" ~cat:"pool" (fun () ->
          if instrument then timed_task ?queued_at f else f ())
    else if instrument then timed_task ?queued_at f
    else f ()
  in
  if n = 0 then ()
  else if Array.length pool.workers = 0 || n = 1 || pool.stopped then begin
    (* Sequential fallback: same closures, same order. *)
    if instrument then Ppdm_obs.Metrics.incr "pool.batches";
    let failed = ref None in
    Array.iter
      (fun f ->
        try run_task f
        with e -> if !failed = None then failed := Some e)
      fns;
    Option.iter raise !failed
  end
  else begin
    if instrument then Ppdm_obs.Metrics.incr "pool.batches";
    let queued_at = if instrument then Some (Ppdm_obs.Metrics.now_ns ()) else None in
    let remaining = Atomic.make n in
    let failed = Atomic.make None in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let finish_one () =
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock batch_lock;
        Condition.signal batch_done;
        Mutex.unlock batch_lock
      end
    in
    if traced then
      Array.iter
        (fun _ -> Ppdm_obs.Trace.instant ~name:"pool.task.submit" ~cat:"pool")
        fns;
    (* The caller is the jobs-th worker: it helps drain the shared queue
       (chunked tasks, or the stealing drivers of slow-to-wake workers),
       then waits for stragglers running on other domains. *)
    let rec help () =
      Mutex.lock pool.lock;
      match Queue.take_opt pool.queue with
      | Some task ->
          Mutex.unlock pool.lock;
          task ();
          help ()
      | None -> Mutex.unlock pool.lock
    in
    (match sched with
    | Chunked ->
        let wrap f () =
          (try run_task ?queued_at f
           with e -> ignore (Atomic.compare_and_set failed None (Some e)));
          finish_one ()
        in
        Mutex.lock pool.lock;
        Array.iter (fun f -> Queue.add (wrap f) pool.queue) fns;
        Condition.broadcast pool.work_available;
        Mutex.unlock pool.lock;
        help ()
    | Stealing ->
        (* Work stealing: the batch is pre-split into one contiguous
           deque per worker; what goes through the shared queue is only
           [jobs - 1] driver closures (the caller runs the remaining
           one).  A driver drains its own deque front-to-back, then
           probes the other deques in a randomized order, stealing from
           the back of the first non-empty victim; a full pass of empty
           probes means every deque is drained, and — since tasks never
           submit tasks — no work can reappear, so the driver quiesces.
           Which domain runs which task is scheduling-dependent, but
           every task writes to its own result slot and the caller
           reduces in task-index order, so output is bit-identical to
           the chunked and sequential paths. *)
        let jobs = pool.jobs in
        let deques =
          Array.init jobs (fun w ->
              {
                d_lock = Mutex.create ();
                front = w * n / jobs;
                back = (w + 1) * n / jobs;
              })
        in
        let exec ~stolen i =
          (try
             if traced && stolen then
               Ppdm_obs.Trace.with_ ~name:"pool.task.stolen" ~cat:"pool"
                 (fun () ->
                   if instrument then timed_task ?queued_at fns.(i)
                   else fns.(i) ())
             else run_task ?queued_at fns.(i)
           with e -> ignore (Atomic.compare_and_set failed None (Some e)));
          if instrument then
            Ppdm_obs.Metrics.incr
              ("pool.cells.w"
              ^ string_of_int (Domain.DLS.get worker_id_key));
          finish_one ()
        in
        let driver me () =
          (* xorshift victim order: scheduling freedom only — the steal
             order cannot reach the results, per the argument above. *)
          let state = ref (((me + 1) * 0x9E3779B1) lor 1) in
          let rand () =
            let x = !state in
            let x = x lxor (x lsl 13) in
            let x = x lxor (x lsr 7) in
            let x = x lxor (x lsl 17) in
            state := x land max_int;
            !state
          in
          let rec own () =
            match deque_pop_own deques.(me) with
            | Some i ->
                exec ~stolen:false i;
                own ()
            | None -> ()
          in
          own ();
          if jobs > 1 then begin
            let rec pass () =
              let offset = rand () mod (jobs - 1) in
              let stolen = ref false in
              let v = ref 0 in
              while (not !stolen) && !v < jobs - 1 do
                let victim =
                  (me + 1 + ((offset + !v) mod (jobs - 1))) mod jobs
                in
                (match deque_steal deques.(victim) with
                | Some i ->
                    stolen := true;
                    if instrument then Ppdm_obs.Metrics.incr "pool.steals";
                    exec ~stolen:true i
                | None ->
                    if instrument then
                      Ppdm_obs.Metrics.incr "pool.steal_failures");
                incr v
              done;
              if !stolen then pass ()
            in
            pass ()
          end
        in
        Mutex.lock pool.lock;
        for w = 1 to jobs - 1 do
          Queue.add (driver w) pool.queue
        done;
        Condition.broadcast pool.work_available;
        Mutex.unlock pool.lock;
        driver 0 ();
        help ());
    Mutex.lock batch_lock;
    while Atomic.get remaining > 0 do
      Condition.wait batch_done batch_lock
    done;
    Mutex.unlock batch_lock;
    match Atomic.get failed with Some e -> raise e | None -> ()
  end

let run ?sched pool fns =
  let results = Array.make (Array.length fns) None in
  run_all ?sched pool
    (Array.mapi (fun i f -> fun () -> results.(i) <- Some (f ())) fns);
  Array.map Option.get results

let default_chunk = 1024

let piece_count ~n ~chunk =
  if chunk <= 0 then invalid_arg "Pool: chunk must be positive";
  if n < 0 then invalid_arg "Pool: negative n";
  (n + chunk - 1) / chunk

let map_reduce pool ~rng ~n ?(chunk = default_chunk) ~map ~reduce () =
  let pieces = piece_count ~n ~chunk in
  if pieces = 0 then None
  else begin
    let results = Array.make pieces None in
    let tasks =
      Array.init pieces (fun i ->
          let child = Rng.derive rng ~index:i in
          let pos = i * chunk in
          let len = min chunk (n - pos) in
          fun () -> results.(i) <- Some (map child ~pos ~len))
    in
    (* One draw decouples the next map_reduce's children from this one's;
       it happens before running so the advance is identical whether the
       batch runs sequentially or on domains. *)
    ignore (Rng.bits64 rng);
    run_all pool tasks;
    let acc = ref (Option.get results.(0)) in
    for i = 1 to pieces - 1 do
      acc := reduce !acc (Option.get results.(i))
    done;
    Some !acc
  end

let map_array pool ~rng ?(chunk = default_chunk) ~f arr =
  let n = Array.length arr in
  let pieces = piece_count ~n ~chunk in
  if pieces = 0 then [||]
  else begin
    let out = Array.make pieces [||] in
    let tasks =
      Array.init pieces (fun i ->
          let child = Rng.derive rng ~index:i in
          let pos = i * chunk in
          let len = min chunk (n - pos) in
          fun () ->
            (* Explicit loop: element order within the chunk is part of
               the determinism contract (the child stream is sequential). *)
            let piece = Array.make len (f child arr.(pos)) in
            for j = 1 to len - 1 do
              piece.(j) <- f child arr.(pos + j)
            done;
            out.(i) <- piece)
    in
    ignore (Rng.bits64 rng);
    run_all pool tasks;
    Array.concat (Array.to_list out)
  end
