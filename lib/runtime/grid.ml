(* 2-D work-grid planning for the vertical counting engine: cut a
   (bitmap-word x candidate) rectangle into cache-sized cells.  The plan
   is a pure function of the data shape and the explicit overrides —
   never of the job count — which is what lets any scheduler execute the
   cells in any order while the reduction stays bit-identical. *)

type cell = { word_lo : int; word_hi : int; cand_lo : int; cand_hi : int }

type t = { word_chunk : int; cand_chunk : int; cells : cell array }

let default_l2_bytes = 1 lsl 20

(* A counting cell streams, per candidate, up to three live dense
   word-windows (the running prefix intersection, the item being ANDed
   in, and the freshly built result) of 8 bytes per word, and should
   leave half the budget for sparse tid ranges and the partial-count
   array: word_chunk = l2 / (2 * 3 * 8).  Small databases are not cut
   finer than the PR 5 default (at most 64 windows of >= 256 words), so
   the planner only deviates from the 1-D sharding once the database is
   big enough that an L2-sized window is the smaller of the two. *)
let word_chunk_for ?(l2_bytes = default_l2_bytes) ~n_words () =
  if l2_bytes <= 0 then invalid_arg "Grid: l2_bytes must be positive";
  let l2_cap = max 256 (l2_bytes / 48) in
  max 256 (min l2_cap ((n_words + 63) / 64))

(* Candidate columns bound the per-cell partial-count array (8 bytes per
   candidate, <= 32 KiB at the cap) and give stealing its second axis:
   at most 16 columns of at least 512 candidates, so small batches stay
   one column (zero overhead vs the 1-D sharding) and the huge level-2
   batches split without losing prefix reuse inside a column. *)
let cand_chunk_for ~n_candidates =
  max 512 (min 4096 ((n_candidates + 15) / 16))

let plan ?l2_bytes ?word_chunk ?(align = 1) ?cand_chunk ~n_words ~n_candidates
    () =
  if n_words <= 0 then invalid_arg "Grid.plan: n_words must be positive";
  if n_candidates <= 0 then
    invalid_arg "Grid.plan: n_candidates must be positive";
  if align <= 0 then invalid_arg "Grid.plan: align must be positive";
  let word_chunk =
    match word_chunk with
    | Some c ->
        if c <= 0 then invalid_arg "Grid.plan: word_chunk must be positive";
        c
    | None -> word_chunk_for ?l2_bytes ~n_words ()
  in
  (* Rounding up to the alignment (compressed-container block seams) is a
     pure function of the shape and the alignment — still independent of
     the job count, so determinism is untouched; only the final window of
     the database may stay unaligned. *)
  let word_chunk = (word_chunk + align - 1) / align * align in
  let cand_chunk =
    match cand_chunk with
    | Some c ->
        if c <= 0 then invalid_arg "Grid.plan: cand_chunk must be positive";
        c
    | None -> cand_chunk_for ~n_candidates
  in
  let windows = (n_words + word_chunk - 1) / word_chunk in
  let columns = (n_candidates + cand_chunk - 1) / cand_chunk in
  (* Column-major: a column's windows are adjacent in cell order, so a
     worker's contiguous deque slice walks one candidate range across
     ascending tid windows — the access pattern the prefix scratch and
     the sparse lower-bound cursors like best. *)
  let cells =
    Array.init (windows * columns) (fun idx ->
        let col = idx / windows and win = idx mod windows in
        {
          word_lo = win * word_chunk;
          word_hi = min n_words ((win + 1) * word_chunk);
          cand_lo = col * cand_chunk;
          cand_hi = min n_candidates ((col + 1) * cand_chunk);
        })
  in
  { word_chunk; cand_chunk; cells }
