(** Parallel entry points for the hot paths of the library, sharded over a
    {!Pool}.

    Every function here returns {e exactly} what its sequential
    counterpart in the same module family returns — bit-identical at any
    job count {e and under either scheduler} ([?sched], defaulting to
    {!Pool.Chunked}), per the {!Pool} determinism contract — so callers
    opt into parallelism by swapping the call site, nothing else.  The
    counting functions shard over a {!Grid} plan that depends only on
    the data shape, never on the job count or scheduler.

    Two caveats inherited from the seeding scheme:

    - the randomizing functions consume the caller's [Rng.t] differently
      from [Randomizer.apply_db]'s single sequential stream (each chunk
      uses a derived child), so their output matches the [jobs = 1] run of
      the {e same} function, not the legacy single-stream pass;
    - a scheme's per-size cache is warmed here before fan-out
      ({!Ppdm.Randomizer.warm_cache}), after which concurrent [apply]
      calls only read it. *)

open Ppdm_prng
open Ppdm_data
open Ppdm

val randomize_db :
  Pool.t -> ?chunk:int -> Randomizer.t -> Rng.t -> Db.t -> Db.t
(** Sharded [Randomizer.apply_db]: the database is cut into fixed-size
    chunks, each randomized on some domain with its derived child stream.
    @raise Invalid_argument on a universe mismatch. *)

val randomize_db_tagged :
  Pool.t -> ?chunk:int -> Randomizer.t -> Rng.t -> Db.t ->
  (int * Itemset.t) array
(** Sharded [Randomizer.apply_db_tagged] (outputs paired with original
    sizes, the server-side protocol format).
    @raise Invalid_argument on a universe mismatch. *)

val observe_all :
  Pool.t -> ?chunk:int -> scheme:Randomizer.t -> itemset:Itemset.t ->
  (int * Itemset.t) array -> Stream.t
(** Fan a batch of tagged reports out into per-domain accumulators and
    fold them with [Stream.merge]: same statistic as a sequential
    [Stream.observe_all] into one accumulator (observation is
    deterministic, so no seeding is involved). *)

val support_counts :
  Pool.t -> ?chunk:int -> ?sched:Pool.sched -> Db.t -> Itemset.t list ->
  (Itemset.t * int) list
(** Sharded [Count.support_counts]: one counting trie per database chunk,
    merged with [Count.merge_into].  When [?chunk] is omitted the chunk
    size is scaled so at most 64 tries are built (counts are sums, so
    unlike randomization the chunking cannot affect the result). *)

val support_counts_vertical :
  Pool.t -> ?chunk:int -> ?cand_chunk:int -> ?sched:Pool.sched ->
  Ppdm_mining.Vertical.t -> Itemset.t list -> (Itemset.t * int) list
(** 2-D-grid-sharded [Vertical.support_counts]: {!Grid.plan} cuts the
    (bitmap-word x candidate) rectangle into cells of [chunk] words by
    [cand_chunk] candidates (defaults: L2-cache-sized windows and at most
    16 candidate columns — see {!Grid}), each cell counts its candidate
    range over its word window into an int array, and the per-cell arrays
    are added into the totals at their column offsets in cell-index
    order.  Counts over disjoint tid ranges add up exactly and candidate
    columns concatenate, so the output is bit-identical to the sequential
    engine at any job count and under either scheduler.
    @raise Invalid_argument if a chunk is non-positive or a candidate is
    empty. *)

val support_counts_sampled :
  Pool.t -> ?chunk:int -> ?cand_chunk:int -> ?sched:Pool.sched ->
  Ppdm_mining.Vertical.t -> Ppdm_mining.Sampled.plan -> Itemset.t list ->
  (Itemset.t * int) list
(** Sharded [Sampled.support_counts]: the plan's selected word runs are
    cut into sub-windows of at most [chunk] words, crossed with candidate
    columns of [cand_chunk] (defaulting like {!support_counts_vertical}),
    counted per cell, summed at column offsets, then scaled to
    full-database equivalents.  The plan is fixed before fan-out, so the
    output is bit-identical to the sequential sampled count at any job
    count and under either scheduler.
    @raise Invalid_argument if a chunk is non-positive or a candidate is
    empty. *)

val apriori_mine :
  Pool.t -> ?chunk:int -> ?sched:Pool.sched -> ?max_size:int ->
  ?counter:Ppdm_mining.Apriori.counter -> Db.t -> min_support:float ->
  (Itemset.t * int) list
(** [Apriori.mine] with every level's candidate counting sharded through
    {!support_counts} ([counter = Trie], the default),
    {!support_counts_vertical} ([counter = Vertical]), or
    {!support_counts_sampled} ([counter = Sampled _]; [Auto] resolves via
    [Apriori.resolve_counter]).  [?chunk] is in transactions for the trie
    and in bitmap words for the vertical and sampled engines; [?sched]
    picks the {!Pool} scheduler for every level.  Candidate generation
    and thresholding replicate [Apriori] exactly
    ([Apriori.absolute_threshold], [Apriori.level1],
    [Apriori.candidates_from]), and the mined output is byte-identical
    across exact engines, job counts, and schedulers (sampled output
    matches the sequential sampled run for the same fraction and seed).
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)

val apriori_mine_vertical :
  Pool.t -> ?chunk:int -> ?cand_chunk:int -> ?sched:Pool.sched ->
  ?max_size:int -> Ppdm_mining.Vertical.t -> min_support:float ->
  (Itemset.t * int) list
(** [Apriori.mine_vertical] with every level sharded through
    {!support_counts_vertical} — the parallel entry point for columnar
    input ([Vertical.of_colfile]), where no [Db.t] ever exists.  Level 1
    seeds from the per-item counts; when columns are compressed the grid
    aligns its word windows to container-block seams
    ([Vertical.word_alignment]) — a locality hint that, like the rest of
    the plan, never depends on the job count.  Output is byte-identical
    to [Apriori.mine_vertical] and to [apriori_mine ~counter:Vertical]
    on the equivalent database, at any job count and scheduler.
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)

val eclat_mine :
  Pool.t -> ?sched:Pool.sched -> ?max_size:int -> Db.t ->
  min_support:float -> (Itemset.t * int) list
(** [Eclat.mine] with the independent prefix classes fanned out across
    domains ([Eclat.mine_atoms] over atom ranges).  The output set is
    range-independent and gets the same final sort, so the partitioning
    is free to depend on the job count.
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)
