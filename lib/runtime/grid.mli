(** 2-D work-grid planning: cut a (tid-window x candidate-range)
    rectangle into cache-sized cells for the vertical counting engine.

    A cell is a word window crossed with a candidate sub-range; counting
    a cell yields partial counts for its candidates over its tids, and
    because counts over disjoint tid windows are sums of non-negative
    integers, adding every cell's partials into a totals array — in any
    order — reconstructs the full-database counts exactly.  The plan is
    a pure function of [(n_words, n_candidates)] and the explicit chunk
    overrides, {e never} of the job count (the {!Pool} determinism
    contract), so the same plan feeds the sequential, chunked, and
    stealing schedulers and all three produce bit-identical output.

    Sizing (see DESIGN.md §14): word windows target an L2-cache footprint
    — three live dense windows of 8-byte words in half the budget, i.e.
    [l2_bytes / 48] words — floored at 256 words and never cutting a
    small database finer than 64 windows; candidate columns cap the
    per-cell partial array at 4096 candidates and keep batches under 512
    candidates in one column. *)

type cell = { word_lo : int; word_hi : int; cand_lo : int; cand_hi : int }
(** Half-open on both axes: words [word_lo, word_hi), candidate indices
    [cand_lo, cand_hi) into the prepared batch. *)

type t = { word_chunk : int; cand_chunk : int; cells : cell array }
(** The resolved chunk sizes and the cells in column-major order (all
    windows of candidate column 0, then column 1, ...). *)

val default_l2_bytes : int
(** Per-core L2 budget assumed when [?l2_bytes] is omitted (1 MiB). *)

val word_chunk_for : ?l2_bytes:int -> n_words:int -> unit -> int
(** The default word-window width: [max 256 (min (l2_bytes / 48)
    (ceil (n_words / 64)))].
    @raise Invalid_argument if [l2_bytes <= 0]. *)

val cand_chunk_for : n_candidates:int -> int
(** The default candidate-column width:
    [max 512 (min 4096 (ceil (n_candidates / 16)))]. *)

val plan :
  ?l2_bytes:int ->
  ?word_chunk:int ->
  ?align:int ->
  ?cand_chunk:int ->
  n_words:int ->
  n_candidates:int ->
  unit ->
  t
(** Cut the rectangle.  Cells partition it exactly: every (word,
    candidate) pair lands in exactly one cell.  [align] (default 1)
    rounds the resolved word chunk up to a multiple of itself —
    {!Ppdm_mining.Vertical.word_alignment} passes the compressed
    container-block width here so cells cut at block seams; it is a
    locality hint only and, being independent of the job count, leaves
    the determinism contract intact.
    @raise Invalid_argument if [n_words <= 0], [n_candidates <= 0],
    [align <= 0], or an explicit chunk is non-positive. *)
