open Ppdm_data
open Ppdm_mining
open Ppdm

(* Populate the scheme's per-size operator cache with every size occurring
   in the input, so the parallel [apply] calls below only read it. *)
let warm scheme db =
  Randomizer.warm_cache scheme ~sizes:(List.map fst (Db.size_histogram db))

let check_universe ~who scheme db =
  if Db.universe db <> Randomizer.universe scheme then
    invalid_arg (Printf.sprintf "Parallel.%s: universe mismatch" who)

let randomize_db pool ?chunk scheme rng db =
  check_universe ~who:"randomize_db" scheme db;
  Ppdm_obs.Span.with_ ~name:"parallel.randomize" @@ fun () ->
  warm scheme db;
  let randomized =
    Pool.map_array pool ~rng ?chunk
      ~f:(fun child tx -> Randomizer.apply scheme child tx)
      (Db.transactions db)
  in
  Db.create ~universe:(Db.universe db) randomized

let randomize_db_tagged pool ?chunk scheme rng db =
  check_universe ~who:"randomize_db_tagged" scheme db;
  Ppdm_obs.Span.with_ ~name:"parallel.randomize" @@ fun () ->
  warm scheme db;
  Pool.map_array pool ~rng ?chunk
    ~f:(fun child tx -> (Itemset.cardinal tx, Randomizer.apply scheme child tx))
    (Db.transactions db)

let chunk_tasks ~n ~chunk make =
  let pieces = (n + chunk - 1) / chunk in
  Array.init pieces (fun i ->
      let pos = i * chunk in
      let len = min chunk (n - pos) in
      fun () -> make ~pos ~len)

let observe_all pool ?(chunk = Pool.default_chunk) ~scheme ~itemset data =
  if chunk <= 0 then invalid_arg "Parallel.observe_all: chunk must be positive";
  Ppdm_obs.Span.with_ ~name:"parallel.observe" @@ fun () ->
  let n = Array.length data in
  if n = 0 then Stream.create ~scheme ~itemset
  else begin
    let tasks =
      chunk_tasks ~n ~chunk (fun ~pos ~len ->
          let acc = Stream.create ~scheme ~itemset in
          for j = pos to pos + len - 1 do
            let size, y = data.(j) in
            Stream.observe acc ~size y
          done;
          acc)
    in
    Stream.merge (Array.to_list (Pool.run pool tasks))
  end

let support_counts pool ?chunk db candidates =
  Ppdm_obs.Span.with_ ~name:"parallel.count" @@ fun () ->
  let txs = Db.transactions db in
  let n = Array.length txs in
  (* Each chunk re-inserts the whole candidate list into its own trie, so
     unlike randomization the default chunking scales with the input to
     bound the number of tries; counts are sums, so this cannot change
     the result. *)
  let chunk =
    match chunk with
    | Some c ->
        if c <= 0 then
          invalid_arg "Parallel.support_counts: chunk must be positive";
        c
    | None -> max Pool.default_chunk ((n + 63) / 64)
  in
  let count_range ~pos ~len =
    let t = Count.create () in
    List.iter (Count.add t) candidates;
    for j = pos to pos + len - 1 do
      Count.count_transaction t txs.(j)
    done;
    t
  in
  if candidates = [] then []
  else if n = 0 then Count.to_list (count_range ~pos:0 ~len:0)
  else begin
    let tries = Pool.run pool (chunk_tasks ~n ~chunk count_range) in
    let merged = tries.(0) in
    for i = 1 to Array.length tries - 1 do
      Count.merge_into merged ~from:tries.(i)
    done;
    Count.to_list merged
  end

(* Tid-range sharding of the vertical engine: domains split the bitmap
   words, not the candidate list.  Every worker counts the whole batch
   over its word window into a plain int array; summing the per-window
   arrays in chunk-index order gives the full-window counts (counts over
   disjoint tid ranges are sums of non-negative ints, so the result is
   bit-identical to the sequential count at any job count). *)
let support_counts_vertical pool ?chunk vt candidates =
  Ppdm_obs.Span.with_ ~name:"parallel.count" @@ fun () ->
  let n_words = Vertical.word_count vt in
  let chunk =
    match chunk with
    | Some c ->
        if c <= 0 then
          invalid_arg "Parallel.support_counts_vertical: chunk must be positive";
        c
    | None ->
        (* At most 64 windows, each at least 256 words (~16k tids): wide
           enough to amortize the per-window candidate walk. *)
        max 256 ((n_words + 63) / 64)
  in
  let prepared = Vertical.prepare candidates in
  if Vertical.prepared_length prepared = 0 then []
  else if n_words = 0 then
    Vertical.assemble prepared (Vertical.count_into vt prepared)
  else begin
    let tasks =
      chunk_tasks ~n:n_words ~chunk (fun ~pos ~len ->
          Vertical.count_into vt ~word_lo:pos ~word_hi:(pos + len) prepared)
    in
    let parts = Pool.run pool tasks in
    let totals = parts.(0) in
    for p = 1 to Array.length parts - 1 do
      let part = parts.(p) in
      for i = 0 to Array.length totals - 1 do
        totals.(i) <- totals.(i) + part.(i)
      done
    done;
    Vertical.assemble prepared totals
  end

(* Sampled counting shards exactly like the vertical engine, except the
   word windows come from the plan's selected runs: each run is cut into
   sub-windows of at most [chunk] words and the per-window arrays are
   summed in run order.  The plan itself is fixed before any task runs,
   so the raw sums — and the scaled counts — are bit-identical to the
   sequential [Sampled.support_counts] at any job count. *)
let support_counts_sampled pool ?chunk vt (plan : Sampled.plan) candidates =
  Ppdm_obs.Span.with_ ~name:"parallel.count" @@ fun () ->
  let selected_words =
    Array.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 plan.Sampled.runs
  in
  let chunk =
    match chunk with
    | Some c ->
        if c <= 0 then
          invalid_arg "Parallel.support_counts_sampled: chunk must be positive";
        c
    | None -> max 256 ((selected_words + 63) / 64)
  in
  let prepared = Vertical.prepare candidates in
  let len = Vertical.prepared_length prepared in
  if len = 0 then []
  else if selected_words = 0 then Vertical.assemble prepared (Array.make len 0)
  else begin
    let tasks = ref [] in
    Array.iter
      (fun (lo, hi) ->
        let pos = ref lo in
        while !pos < hi do
          let wlo = !pos in
          let whi = min hi (wlo + chunk) in
          tasks :=
            (fun () -> Vertical.count_into vt ~word_lo:wlo ~word_hi:whi prepared)
            :: !tasks;
          pos := whi
        done)
      plan.Sampled.runs;
    let parts = Pool.run pool (Array.of_list (List.rev !tasks)) in
    let totals = parts.(0) in
    for p = 1 to Array.length parts - 1 do
      let part = parts.(p) in
      for i = 0 to len - 1 do
        totals.(i) <- totals.(i) + part.(i)
      done
    done;
    Vertical.assemble prepared (Sampled.scale_counts plan totals)
  end

let apriori_mine pool ?chunk ?max_size ?(counter = Apriori.Trie) db
    ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Parallel.apriori_mine: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"parallel.apriori" @@ fun () ->
  let count_level =
    match Apriori.resolve_counter counter db with
    | `Trie ->
        Ppdm_obs.Metrics.incr "apriori.counter.trie";
        fun candidates -> support_counts pool ?chunk db candidates
    | `Vertical ->
        Ppdm_obs.Metrics.incr "apriori.counter.vertical";
        let state = lazy (Vertical.load db) in
        fun candidates ->
          support_counts_vertical pool ?chunk (Lazy.force state) candidates
    | `Sampled (fraction, seed) ->
        Ppdm_obs.Metrics.incr "apriori.counter.sampled";
        let state =
          lazy
            (let vt = Vertical.load db in
             let plan =
               Sampled.plan ~n:(Vertical.length vt)
                 ~word_count:(Vertical.word_count vt) ~fraction ~seed ()
             in
             (vt, plan))
        in
        fun candidates ->
          let vt, plan = Lazy.force state in
          support_counts_sampled pool ?chunk vt plan candidates
  in
  let threshold = Apriori.absolute_threshold ~n:(Db.length db) ~min_support in
  let cap = Option.value max_size ~default:max_int in
  let level1 =
    Apriori.with_level_span ~size:1 (fun () -> Apriori.level1 db ~threshold)
  in
  Apriori.record_level ~size:1 ~candidates:level1 ~frequent:level1;
  let rec levels acc current size =
    if size > cap || current = [] then acc
    else begin
      let next =
        Apriori.with_level_span ~size (fun () ->
            let candidates =
              Apriori.candidates_from ~frequent:(List.map fst current) ~size
            in
            if candidates = [] then []
            else begin
              let counted = count_level candidates in
              let next = List.filter (fun (_, c) -> c >= threshold) counted in
              Apriori.record_level ~size ~candidates ~frequent:next;
              next
            end)
      in
      (* rev_append, not (@): the final sort fixes the order, and
         appending per level is quadratic in the output size. *)
      levels (List.rev_append next acc) next (size + 1)
    end
  in
  let result = if cap < 1 then [] else levels level1 level1 2 in
  List.sort (fun (a, _) (b, _) -> Itemset.compare a b) result

let eclat_mine pool ?max_size db ~min_support =
  Ppdm_obs.Span.with_ ~name:"parallel.eclat" @@ fun () ->
  let atoms = Eclat.atoms db ~min_support in
  let n = Eclat.atom_count atoms in
  if n = 0 || Option.value max_size ~default:max_int < 1 then []
  else begin
    (* Prefix classes shrink as the root item grows (extensions only look
       rightwards), so over-partition relative to the job count to even
       the load.  The output set is partition-independent. *)
    let pieces = min n (4 * Pool.jobs pool) in
    let tasks =
      Array.init pieces (fun i ->
          let lo = i * n / pieces and hi = (i + 1) * n / pieces in
          fun () -> Eclat.mine_atoms ?max_size atoms ~lo ~hi)
    in
    let parts = Pool.run pool tasks in
    List.sort
      (fun (a, _) (b, _) -> Itemset.compare a b)
      (List.concat (Array.to_list parts))
  end
