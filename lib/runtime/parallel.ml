open Ppdm_data
open Ppdm_mining
open Ppdm

(* Populate the scheme's per-size operator cache with every size occurring
   in the input, so the parallel [apply] calls below only read it. *)
let warm scheme db =
  Randomizer.warm_cache scheme ~sizes:(List.map fst (Db.size_histogram db))

let check_universe ~who scheme db =
  if Db.universe db <> Randomizer.universe scheme then
    invalid_arg (Printf.sprintf "Parallel.%s: universe mismatch" who)

let randomize_db pool ?chunk scheme rng db =
  check_universe ~who:"randomize_db" scheme db;
  Ppdm_obs.Span.with_ ~name:"parallel.randomize" @@ fun () ->
  warm scheme db;
  let randomized =
    Pool.map_array pool ~rng ?chunk
      ~f:(fun child tx -> Randomizer.apply scheme child tx)
      (Db.transactions db)
  in
  Db.create ~universe:(Db.universe db) randomized

let randomize_db_tagged pool ?chunk scheme rng db =
  check_universe ~who:"randomize_db_tagged" scheme db;
  Ppdm_obs.Span.with_ ~name:"parallel.randomize" @@ fun () ->
  warm scheme db;
  Pool.map_array pool ~rng ?chunk
    ~f:(fun child tx -> (Itemset.cardinal tx, Randomizer.apply scheme child tx))
    (Db.transactions db)

let chunk_tasks ~n ~chunk make =
  let pieces = (n + chunk - 1) / chunk in
  Array.init pieces (fun i ->
      let pos = i * chunk in
      let len = min chunk (n - pos) in
      fun () -> make ~pos ~len)

let observe_all pool ?(chunk = Pool.default_chunk) ~scheme ~itemset data =
  if chunk <= 0 then invalid_arg "Parallel.observe_all: chunk must be positive";
  Ppdm_obs.Span.with_ ~name:"parallel.observe" @@ fun () ->
  let n = Array.length data in
  if n = 0 then Stream.create ~scheme ~itemset
  else begin
    let tasks =
      chunk_tasks ~n ~chunk (fun ~pos ~len ->
          let acc = Stream.create ~scheme ~itemset in
          for j = pos to pos + len - 1 do
            let size, y = data.(j) in
            Stream.observe acc ~size y
          done;
          acc)
    in
    Stream.merge (Array.to_list (Pool.run pool tasks))
  end

let support_counts pool ?chunk ?sched db candidates =
  Ppdm_obs.Span.with_ ~name:"parallel.count" @@ fun () ->
  let txs = Db.transactions db in
  let n = Array.length txs in
  (* Each chunk re-inserts the whole candidate list into its own trie, so
     unlike randomization the default chunking scales with the input to
     bound the number of tries; counts are sums, so this cannot change
     the result. *)
  let chunk =
    match chunk with
    | Some c ->
        if c <= 0 then
          invalid_arg "Parallel.support_counts: chunk must be positive";
        c
    | None -> max Pool.default_chunk ((n + 63) / 64)
  in
  let count_range ~pos ~len =
    let t = Count.create () in
    List.iter (Count.add t) candidates;
    for j = pos to pos + len - 1 do
      Count.count_transaction t txs.(j)
    done;
    t
  in
  if candidates = [] then []
  else if n = 0 then Count.to_list (count_range ~pos:0 ~len:0)
  else begin
    let tries = Pool.run ?sched pool (chunk_tasks ~n ~chunk count_range) in
    let merged = tries.(0) in
    for i = 1 to Array.length tries - 1 do
      Count.merge_into merged ~from:tries.(i)
    done;
    Count.to_list merged
  end

(* 2-D grid sharding of the vertical engine: the (bitmap-word x
   candidate) rectangle is cut into cache-sized cells by [Grid.plan] —
   word windows sized to an L2 footprint, candidate columns bounding the
   per-cell partial array.  Every cell counts its candidate range over
   its word window into a plain int array; adding each cell's partials
   into the totals at its column offset, in cell-index order, gives the
   full counts (counts over disjoint tid ranges are sums of non-negative
   ints, and columns just concatenate), so the result is bit-identical
   to the sequential count at any job count and under either scheduler. *)
let support_counts_vertical pool ?chunk ?cand_chunk ?sched vt candidates =
  Ppdm_obs.Span.with_ ~name:"parallel.count" @@ fun () ->
  let n_words = Vertical.word_count vt in
  (match chunk with
  | Some c when c <= 0 ->
      invalid_arg "Parallel.support_counts_vertical: chunk must be positive"
  | _ -> ());
  let prepared = Vertical.prepare candidates in
  let n_cands = Vertical.prepared_length prepared in
  if n_cands = 0 then []
  else if n_words = 0 then
    Vertical.assemble prepared (Vertical.count_into vt prepared)
  else begin
    let grid =
      Grid.plan ?word_chunk:chunk ~align:(Vertical.word_alignment vt)
        ?cand_chunk ~n_words ~n_candidates:n_cands ()
    in
    let tasks =
      Array.map
        (fun (c : Grid.cell) ->
          fun () ->
            Vertical.count_into vt ~word_lo:c.Grid.word_lo
              ~word_hi:c.Grid.word_hi ~cand_lo:c.Grid.cand_lo
              ~cand_hi:c.Grid.cand_hi prepared)
        grid.Grid.cells
    in
    let parts = Pool.run ?sched pool tasks in
    let totals = Array.make n_cands 0 in
    Array.iteri
      (fun idx part ->
        let base = grid.Grid.cells.(idx).Grid.cand_lo in
        for i = 0 to Array.length part - 1 do
          totals.(base + i) <- totals.(base + i) + part.(i)
        done)
      parts;
    Vertical.assemble prepared totals
  end

(* Sampled counting shards like the vertical engine, except the word
   windows come from the plan's selected runs: each run is cut into
   sub-windows of at most [chunk] words, crossed with the same candidate
   columns the grid planner would cut, and the per-cell arrays are summed
   at their column offsets.  The plan itself is fixed before any task
   runs, so the raw sums — and the scaled counts — are bit-identical to
   the sequential [Sampled.support_counts] at any job count and under
   either scheduler. *)
let support_counts_sampled pool ?chunk ?cand_chunk ?sched vt
    (plan : Sampled.plan) candidates =
  Ppdm_obs.Span.with_ ~name:"parallel.count" @@ fun () ->
  let selected_words =
    Array.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 plan.Sampled.runs
  in
  let chunk =
    match chunk with
    | Some c ->
        if c <= 0 then
          invalid_arg "Parallel.support_counts_sampled: chunk must be positive";
        c
    | None -> max 256 ((selected_words + 63) / 64)
  in
  let prepared = Vertical.prepare candidates in
  let len = Vertical.prepared_length prepared in
  let cand_chunk =
    match cand_chunk with
    | Some c ->
        if c <= 0 then
          invalid_arg
            "Parallel.support_counts_sampled: cand_chunk must be positive";
        c
    | None -> if len = 0 then 1 else Grid.cand_chunk_for ~n_candidates:len
  in
  if len = 0 then []
  else if selected_words = 0 then Vertical.assemble prepared (Array.make len 0)
  else begin
    let windows = ref [] in
    Array.iter
      (fun (lo, hi) ->
        let pos = ref lo in
        while !pos < hi do
          let wlo = !pos in
          let whi = min hi (wlo + chunk) in
          windows := (wlo, whi) :: !windows;
          pos := whi
        done)
      plan.Sampled.runs;
    let windows = Array.of_list (List.rev !windows) in
    let columns = (len + cand_chunk - 1) / cand_chunk in
    let n_windows = Array.length windows in
    let cells =
      Array.init (n_windows * columns) (fun idx ->
          let col = idx / n_windows and win = idx mod n_windows in
          let wlo, whi = windows.(win) in
          let clo = col * cand_chunk in
          let chi = min len ((col + 1) * cand_chunk) in
          (wlo, whi, clo, chi))
    in
    let tasks =
      Array.map
        (fun (wlo, whi, clo, chi) ->
          fun () ->
            Vertical.count_into vt ~word_lo:wlo ~word_hi:whi ~cand_lo:clo
              ~cand_hi:chi prepared)
        cells
    in
    let parts = Pool.run ?sched pool tasks in
    let totals = Array.make len 0 in
    Array.iteri
      (fun idx part ->
        let _, _, base, _ = cells.(idx) in
        for i = 0 to Array.length part - 1 do
          totals.(base + i) <- totals.(base + i) + part.(i)
        done)
      parts;
    Vertical.assemble prepared (Sampled.scale_counts plan totals)
  end

let apriori_mine pool ?chunk ?sched ?max_size ?(counter = Apriori.Trie) db
    ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Parallel.apriori_mine: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"parallel.apriori" @@ fun () ->
  let count_level =
    match Apriori.resolve_counter counter db with
    | `Trie ->
        Ppdm_obs.Metrics.incr "apriori.counter.trie";
        fun candidates -> support_counts pool ?chunk ?sched db candidates
    | `Vertical ->
        Ppdm_obs.Metrics.incr "apriori.counter.vertical";
        let state = lazy (Vertical.of_db db) in
        fun candidates ->
          support_counts_vertical pool ?chunk ?sched (Lazy.force state)
            candidates
    | `Sampled (fraction, seed) ->
        Ppdm_obs.Metrics.incr "apriori.counter.sampled";
        let state =
          lazy
            (let vt = Vertical.of_db db in
             let plan =
               Sampled.plan ~n:(Vertical.length vt)
                 ~word_count:(Vertical.word_count vt) ~fraction ~seed ()
             in
             (vt, plan))
        in
        fun candidates ->
          let vt, plan = Lazy.force state in
          support_counts_sampled pool ?chunk ?sched vt plan candidates
  in
  let threshold = Apriori.absolute_threshold ~n:(Db.length db) ~min_support in
  Apriori.run_levels ?max_size ~threshold
    ~level1:(fun () -> Apriori.level1 db ~threshold)
    ~count_level ()

(* Mine an already-vertical database with grid-sharded counting — the
   parallel entry point for columnar input, where no Db.t ever exists.
   Same level loop, same cell-order reduction: the output is
   bit-identical to [Apriori.mine_vertical] (and, via the differential
   suite, to every other engine) at any job count and scheduler. *)
let apriori_mine_vertical pool ?chunk ?cand_chunk ?sched ?max_size vt
    ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Parallel.apriori_mine_vertical: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"parallel.apriori" @@ fun () ->
  Ppdm_obs.Metrics.incr "apriori.counter.vertical";
  let threshold =
    Apriori.absolute_threshold ~n:(Vertical.length vt) ~min_support
  in
  let counts = Array.init (Vertical.universe vt) (Vertical.item_count vt) in
  Apriori.run_levels ?max_size ~threshold
    ~level1:(fun () -> Apriori.level1_of_counts counts ~threshold)
    ~count_level:(fun candidates ->
      support_counts_vertical pool ?chunk ?cand_chunk ?sched vt candidates)
    ()

let eclat_mine pool ?sched ?max_size db ~min_support =
  Ppdm_obs.Span.with_ ~name:"parallel.eclat" @@ fun () ->
  let atoms = Eclat.atoms db ~min_support in
  let n = Eclat.atom_count atoms in
  if n = 0 || Option.value max_size ~default:max_int < 1 then []
  else begin
    (* Prefix classes shrink as the root item grows (extensions only look
       rightwards), so over-partition relative to the job count to even
       the load.  The output set is partition-independent. *)
    let pieces = min n (4 * Pool.jobs pool) in
    let tasks =
      Array.init pieces (fun i ->
          let lo = i * n / pieces and hi = (i + 1) * n / pieces in
          fun () -> Eclat.mine_atoms ?max_size atoms ~lo ~hi)
    in
    let parts = Pool.run ?sched pool tasks in
    List.sort
      (fun (a, _) (b, _) -> Itemset.compare a b)
      (List.concat (Array.to_list parts))
  end
