open Ppdm_data
open Ppdm_mining
open Ppdm

(* Populate the scheme's per-size operator cache with every size occurring
   in the input, so the parallel [apply] calls below only read it. *)
let warm scheme db =
  Randomizer.warm_cache scheme ~sizes:(List.map fst (Db.size_histogram db))

let check_universe ~who scheme db =
  if Db.universe db <> Randomizer.universe scheme then
    invalid_arg (Printf.sprintf "Parallel.%s: universe mismatch" who)

let randomize_db pool ?chunk scheme rng db =
  check_universe ~who:"randomize_db" scheme db;
  Ppdm_obs.Span.with_ ~name:"parallel.randomize" @@ fun () ->
  warm scheme db;
  let randomized =
    Pool.map_array pool ~rng ?chunk
      ~f:(fun child tx -> Randomizer.apply scheme child tx)
      (Db.transactions db)
  in
  Db.create ~universe:(Db.universe db) randomized

let randomize_db_tagged pool ?chunk scheme rng db =
  check_universe ~who:"randomize_db_tagged" scheme db;
  Ppdm_obs.Span.with_ ~name:"parallel.randomize" @@ fun () ->
  warm scheme db;
  Pool.map_array pool ~rng ?chunk
    ~f:(fun child tx -> (Itemset.cardinal tx, Randomizer.apply scheme child tx))
    (Db.transactions db)

let chunk_tasks ~n ~chunk make =
  let pieces = (n + chunk - 1) / chunk in
  Array.init pieces (fun i ->
      let pos = i * chunk in
      let len = min chunk (n - pos) in
      fun () -> make ~pos ~len)

let observe_all pool ?(chunk = Pool.default_chunk) ~scheme ~itemset data =
  if chunk <= 0 then invalid_arg "Parallel.observe_all: chunk must be positive";
  Ppdm_obs.Span.with_ ~name:"parallel.observe" @@ fun () ->
  let n = Array.length data in
  if n = 0 then Stream.create ~scheme ~itemset
  else begin
    let tasks =
      chunk_tasks ~n ~chunk (fun ~pos ~len ->
          let acc = Stream.create ~scheme ~itemset in
          for j = pos to pos + len - 1 do
            let size, y = data.(j) in
            Stream.observe acc ~size y
          done;
          acc)
    in
    Stream.merge (Array.to_list (Pool.run pool tasks))
  end

let support_counts pool ?chunk db candidates =
  Ppdm_obs.Span.with_ ~name:"parallel.count" @@ fun () ->
  let txs = Db.transactions db in
  let n = Array.length txs in
  (* Each chunk re-inserts the whole candidate list into its own trie, so
     unlike randomization the default chunking scales with the input to
     bound the number of tries; counts are sums, so this cannot change
     the result. *)
  let chunk =
    match chunk with
    | Some c ->
        if c <= 0 then
          invalid_arg "Parallel.support_counts: chunk must be positive";
        c
    | None -> max Pool.default_chunk ((n + 63) / 64)
  in
  let count_range ~pos ~len =
    let t = Count.create () in
    List.iter (Count.add t) candidates;
    for j = pos to pos + len - 1 do
      Count.count_transaction t txs.(j)
    done;
    t
  in
  if candidates = [] then []
  else if n = 0 then Count.to_list (count_range ~pos:0 ~len:0)
  else begin
    let tries = Pool.run pool (chunk_tasks ~n ~chunk count_range) in
    let merged = tries.(0) in
    for i = 1 to Array.length tries - 1 do
      Count.merge_into merged ~from:tries.(i)
    done;
    Count.to_list merged
  end

let apriori_mine pool ?chunk ?max_size db ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Parallel.apriori_mine: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"parallel.apriori" @@ fun () ->
  let threshold = Apriori.absolute_threshold ~n:(Db.length db) ~min_support in
  let cap = Option.value max_size ~default:max_int in
  let level1 =
    Apriori.with_level_span ~size:1 (fun () -> Apriori.level1 db ~threshold)
  in
  Apriori.record_level ~size:1 ~candidates:level1 ~frequent:level1;
  let rec levels acc current size =
    if size > cap || current = [] then acc
    else begin
      let next =
        Apriori.with_level_span ~size (fun () ->
            let candidates =
              Apriori.candidates_from ~frequent:(List.map fst current) ~size
            in
            if candidates = [] then []
            else begin
              let counted = support_counts pool ?chunk db candidates in
              let next = List.filter (fun (_, c) -> c >= threshold) counted in
              Apriori.record_level ~size ~candidates ~frequent:next;
              next
            end)
      in
      (* rev_append, not (@): the final sort fixes the order, and
         appending per level is quadratic in the output size. *)
      levels (List.rev_append next acc) next (size + 1)
    end
  in
  let result = if cap < 1 then [] else levels level1 level1 2 in
  List.sort (fun (a, _) (b, _) -> Itemset.compare a b) result

let eclat_mine pool ?max_size db ~min_support =
  Ppdm_obs.Span.with_ ~name:"parallel.eclat" @@ fun () ->
  let atoms = Eclat.atoms db ~min_support in
  let n = Eclat.atom_count atoms in
  if n = 0 || Option.value max_size ~default:max_int < 1 then []
  else begin
    (* Prefix classes shrink as the root item grows (extensions only look
       rightwards), so over-partition relative to the job count to even
       the load.  The output set is partition-independent. *)
    let pieces = min n (4 * Pool.jobs pool) in
    let tasks =
      Array.init pieces (fun i ->
          let lo = i * n / pieces and hi = (i + 1) * n / pieces in
          fun () -> Eclat.mine_atoms ?max_size atoms ~lo ~hi)
    in
    let parts = Pool.run pool tasks in
    List.sort
      (fun (a, _) (b, _) -> Itemset.compare a b)
      (List.concat (Array.to_list parts))
  end
