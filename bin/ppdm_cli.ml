(* ppdm: command-line front end for the privacy-preserving mining library.

   Subcommands:
     gen        generate a synthetic transaction database
     randomize  apply a randomization operator (client side)
     analyze    print the privacy certificate of an operator
     mine       non-private Apriori over a database file
     private    end-to-end demo: randomize + privacy-preserving mining,
                compared against the non-private ground truth *)

open Cmdliner
open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm_mining
open Ppdm
open Ppdm_runtime

(* ------------------------------------------------------------ tagged io *)

(* Randomized data is (original_size, itemset) pairs: the size is public
   protocol metadata the estimator needs.  Format: header as in Io, then
   "size|items" lines. *)
let write_tagged path ~universe data =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "tagged %d transactions %d\n" universe (Array.length data);
      Array.iter
        (fun (size, items) ->
          Printf.fprintf oc "%d|%s\n" size
            (String.concat " "
               (List.map string_of_int (Itemset.to_list items))))
        data)

let read_tagged path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      match String.split_on_char ' ' (String.trim header) with
      | [ "tagged"; u; "transactions"; c ] ->
          let universe = int_of_string u and count = int_of_string c in
          let data =
            Array.init count (fun _ ->
                let line = input_line ic in
                match String.split_on_char '|' line with
                | [ size; items ] ->
                    let items =
                      List.filter_map int_of_string_opt
                        (String.split_on_char ' ' items)
                    in
                    (int_of_string size, Itemset.of_list items)
                | _ -> failwith "malformed tagged line")
          in
          (universe, data)
      | _ -> failwith "not a tagged randomized-data file")

(* ------------------------------------------------------- operator specs *)

type operator_spec =
  | Op_uniform of float * float
  | Op_cut_and_paste of int * float
  | Op_optimized of float * float option (* gamma, fixed rho *)

let scheme_of_spec ~universe = function
  | Op_uniform (p_keep, p_add) -> Randomizer.uniform ~universe ~p_keep ~p_add
  | Op_cut_and_paste (cutoff, rho) -> Randomizer.cut_and_paste ~universe ~cutoff ~rho
  | Op_optimized (gamma, rho) -> (
      match rho with
      | None -> Optimizer.scheme_for_estimation ~universe ~gamma ()
      | Some rho ->
          Randomizer.per_size ~universe
            ~name:(Printf.sprintf "optimized-sas(gamma=%g,rho=%g)" gamma rho)
            (fun m ->
              if m = 0 then { Randomizer.keep_dist = [| 1. |]; rho }
              else begin
                let objective =
                  Optimizer.Min_sigma_upto
                    { k_max = min 3 m; n = 100_000; p_bg = 0.02; support = 0.01 }
                in
                { Randomizer.keep_dist = Optimizer.keep_dist ~m ~rho ~gamma objective;
                  rho }
              end))

let operator_term =
  let operator =
    Arg.(
      value
      & opt (enum [ ("uniform", `Uniform); ("cutpaste", `Cutpaste); ("optimized", `Optimized) ]) `Optimized
      & info [ "operator" ] ~doc:"Operator kind: uniform, cutpaste, or optimized.")
  in
  let p_keep = Arg.(value & opt float 0.5 & info [ "p-keep" ] ~doc:"uniform: keep probability.") in
  let p_add = Arg.(value & opt float 0.05 & info [ "p-add" ] ~doc:"uniform: add probability.") in
  let cutoff = Arg.(value & opt int 3 & info [ "cutoff" ] ~doc:"cutpaste: the K parameter.") in
  let rho = Arg.(value & opt (some float) None & info [ "rho" ] ~doc:"noise rate (optional for optimized).") in
  let gamma = Arg.(value & opt float 19. & info [ "gamma" ] ~doc:"optimized: amplification budget.") in
  let build operator p_keep p_add cutoff rho gamma =
    match operator with
    | `Uniform -> Op_uniform (p_keep, p_add)
    | `Cutpaste -> Op_cut_and_paste (cutoff, Option.value rho ~default:0.1)
    | `Optimized -> Op_optimized (gamma, rho)
  in
  Term.(const build $ operator $ p_keep $ p_add $ cutoff $ rho $ gamma)

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (all commands are deterministic).")

(* --------------------------------------------------------- stats / trace *)

let stats_term =
  Arg.(
    value
    & opt (some (enum [ ("human", Ppdm_obs.Report.Human); ("json", Ppdm_obs.Report.Json) ])) None
    & info [ "stats" ]
        ~docv:"FORMAT"
        ~doc:
          "Collect and print an execution-metrics report (randomizer, \
           counting, miner levels, estimator, pool).  FORMAT is human or \
           json (JSON lines).  The report goes to stderr, so stdout and \
           every output file stay byte-identical to a run without \
           $(b,--stats).")

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~docv:"FILE"
        ~doc:
          "Record an event timeline (spans, pool tasks, miner levels) and \
           write it to FILE on exit: folded stacks for flamegraph tools \
           when FILE ends in .folded, Chrome trace-event JSON (loadable \
           in chrome://tracing or Perfetto) otherwise.  Same contract as \
           $(b,--stats): the report goes to the file, stdout stays \
           byte-identical to a run without $(b,--trace).")

(* Enable the requested observability layers around [f]; emit the reports
   afterwards — also on failure, so a crashed run still shows where time
   went (and the trace shows where it died).  Stdout is untouched:
   results must be byte-identical with and without --stats/--trace. *)
let with_obs stats trace f =
  if stats = None && trace = None then f ()
  else begin
    if trace <> None then Ppdm_obs.Trace.set_enabled true;
    if stats <> None then Ppdm_obs.Metrics.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Ppdm_obs.Metrics.set_enabled false;
        Ppdm_obs.Trace.set_enabled false;
        Option.iter
          (fun fmt ->
            prerr_string (Ppdm_obs.Report.to_string fmt);
            flush stderr)
          stats;
        Option.iter Ppdm_obs.Trace.write_file trace)
      f
  end

let jobs_term =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ]
        ~doc:
          "Number of domains to run on.  Output is byte-identical at any \
           job count for a fixed seed (randomization is seeded per chunk, \
           not per domain).")

let sched_term =
  let sched_conv =
    Arg.enum [ ("chunked", Pool.Chunked); ("stealing", Pool.Stealing) ]
  in
  Arg.(
    value & opt sched_conv Pool.Chunked
    & info [ "sched" ]
        ~doc:
          "Pool scheduler: $(b,chunked) (workers pull tasks from a shared \
           queue) or $(b,stealing) (per-worker deques with work stealing \
           for skewed task costs).  Output is byte-identical under either \
           scheduler — tasks and their reduction order never depend on \
           the schedule.")

let unsafe_kernels_term =
  Arg.(
    value & flag
    & info [ "unsafe-kernels" ]
        ~doc:
          "Use the bounds-check-free counting kernels in the vertical \
           engine.  Counts are identical (the differential test suite \
           enforces it); only the per-word bounds checks go.")

let set_kernels unsafe = if unsafe then Vertical.set_unsafe_kernels true

(* ----------------------------------------------------------------- gen *)

let gen_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("quest", `Quest); ("fixed", `Fixed); ("zipf", `Zipf) ]) `Quest
      & info [ "kind" ] ~doc:"Generator: quest, fixed, or zipf.")
  in
  let universe = Arg.(value & opt int 1000 & info [ "universe" ] ~doc:"Number of items.") in
  let count = Arg.(value & opt int 10000 & info [ "count" ] ~doc:"Number of transactions.") in
  let size = Arg.(value & opt int 5 & info [ "size" ] ~doc:"fixed: transaction size; quest/zipf: average size.") in
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc:"Output file.") in
  let run kind universe count size out seed stats trace =
    with_obs stats trace @@ fun () ->
    let rng = Rng.create ~seed () in
    let db =
      match kind with
      | `Quest ->
          Quest.generate rng
            {
              Quest.default with
              universe;
              n_transactions = count;
              avg_transaction_size = float_of_int size;
            }
      | `Fixed -> Simple.fixed_size rng ~universe ~size ~count
      | `Zipf ->
          Simple.zipf_clickstream rng ~universe ~exponent:1.1
            ~avg_size:(float_of_int size) ~count
    in
    Io.write_file out db;
    Printf.printf "wrote %d transactions over %d items to %s (avg size %.2f)\n"
      (Db.length db) (Db.universe db) out (Db.avg_size db)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic transaction database.")
    Term.(
      const run $ kind $ universe $ count $ size $ out $ seed_term
      $ stats_term $ trace_term)

(* ----------------------------------------------------------- randomize *)

let in_term = Arg.(required & opt (some string) None & info [ "in"; "i" ] ~doc:"Input database file.")

(* mine/private/recover take either a row-major file (--in) or a columnar
   .ppdmc file (--db); the optional variant of in_term pairs with db_term
   and [resolve_source] enforces exactly-one. *)
let in_opt_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "in"; "i" ] ~doc:"Input database file.")

let db_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ]
        ~docv:"FILE"
        ~doc:
          "Columnar database file (.ppdmc, written by $(b,ppdm convert)): \
           per-item compressed tid-set containers are loaded and counted \
           in place — the row-major database is never materialized.  \
           Mutually exclusive with $(b,--in).")

let resolve_source ~who input dbfile =
  match (input, dbfile) with
  | Some path, None -> `Row path
  | None, Some path -> `Columnar path
  | Some _, Some _ ->
      Printf.eprintf "%s: --in and --db are mutually exclusive\n" who;
      exit 2
  | None, None ->
      Printf.eprintf "%s: one of --in or --db is required\n" who;
      exit 2

let with_colfile ~who path f =
  let cf =
    try Colfile.open_file path with
    | Colfile.Error e ->
        Printf.eprintf "%s: %s: %s\n" who path (Colfile.error_message e);
        exit 1
    | Sys_error msg ->
        Printf.eprintf "%s: %s\n" who msg;
        exit 1
  in
  Fun.protect ~finally:(fun () -> Colfile.close cf) (fun () -> f cf)

let randomize_cmd =
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc:"Output tagged file.") in
  let scheme_out =
    Arg.(value & opt (some string) None
         & info [ "scheme-out" ] ~doc:"Also write the operator parameters (for the server).")
  in
  let run input out scheme_out spec seed jobs stats trace =
    with_obs stats trace @@ fun () ->
    let db = Io.read_file input in
    let scheme = scheme_of_spec ~universe:(Db.universe db) spec in
    let rng = Rng.create ~seed () in
    let data =
      Pool.with_pool ~jobs (fun pool ->
          Parallel.randomize_db_tagged pool scheme rng db)
    in
    write_tagged out ~universe:(Db.universe db) data;
    Option.iter
      (fun path ->
        Scheme_io.write_file path scheme ~sizes:(Scheme_io.sizes_of_db db);
        Printf.printf "scheme parameters -> %s\n" path)
      scheme_out;
    Printf.printf "randomized %d transactions with %s -> %s\n" (Array.length data)
      (Randomizer.name scheme) out
  in
  Cmd.v
    (Cmd.info "randomize" ~doc:"Apply a randomization operator to a database (client side).")
    Term.(
      const run $ in_term $ out $ scheme_out $ operator_term $ seed_term
      $ jobs_term $ stats_term $ trace_term)

(* -------------------------------------------------------------- analyze *)

let analyze_cmd =
  let size = Arg.(value & opt int 5 & info [ "size" ] ~doc:"Transaction size to analyze.") in
  let universe = Arg.(value & opt int 1000 & info [ "universe" ] ~doc:"Universe size.") in
  let run spec universe size stats trace =
    with_obs stats trace @@ fun () ->
    let scheme = scheme_of_spec ~universe spec in
    let r = Randomizer.resolve scheme ~size in
    Printf.printf "operator: %s at transaction size %d\n" (Randomizer.name scheme) size;
    Printf.printf "keep distribution: %s\n"
      (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.4f") r.keep_dist)));
    Printf.printf "rho: %.4f, expected items kept: %.1f%%\n" r.rho
      (100. *. Randomizer.expected_kept_fraction scheme ~size);
    let gamma = Amplification.gamma_resolved r in
    if gamma = infinity then
      print_endline "amplification: INFINITE (no distribution-free guarantee)"
    else begin
      Printf.printf "amplification gamma: %.3f\n" gamma;
      List.iter
        (fun prior ->
          Printf.printf "  prior %4.1f%% -> posterior at most %5.1f%%\n" (100. *. prior)
            (100. *. Amplification.posterior_upper_bound ~gamma ~prior))
        [ 0.01; 0.05; 0.1 ]
    end;
    List.iter
      (fun prior ->
        Printf.printf "item-level posterior at prior %4.1f%%: %5.1f%%\n" (100. *. prior)
          (100. *. Breach.worst_item_posterior r ~prior))
      [ 0.01; 0.05 ];
    for k = 1 to min 3 size do
      Printf.printf "lowest discoverable support (k=%d, N=100k): %.4f\n" k
        (Estimator.lowest_discoverable_support r ~k ~n:100_000 ~p_bg:0.02)
    done
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print the privacy certificate and utility profile of an operator.")
    Term.(const run $ operator_term $ universe $ size $ stats_term $ trace_term)

(* ----------------------------------------------------------------- mine *)

let minsup_term =
  Arg.(value & opt float 0.02 & info [ "min-support" ] ~doc:"Minimum support fraction.")

let maxsize_term =
  Arg.(value & opt int 3 & info [ "max-size" ] ~doc:"Largest itemset size explored.")

(* The counter flag accepts the three exact engines plus a parameterized
   sampled spec; the sampling seed is supplied separately (--seed), so
   the spec parses to an intermediate form resolved at run time. *)
type counter_spec = Counter_exact of Apriori.counter | Counter_sampled of float

let counter_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "trie" -> Ok (Counter_exact Apriori.Trie)
    | "vertical" -> Ok (Counter_exact Apriori.Vertical)
    | "auto" -> Ok (Counter_exact Apriori.Auto)
    | spec when String.length spec > 8 && String.sub spec 0 8 = "sampled:" -> (
        let frac = String.sub spec 8 (String.length spec - 8) in
        match float_of_string_opt frac with
        | Some f when f > 0. && f <= 1. -> Ok (Counter_sampled f)
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "sampled fraction %S must be a float in (0,1]" frac)))
    | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "counter %S must be trie, vertical, auto, or sampled:F" s))
  in
  let print ppf = function
    | Counter_exact Apriori.Trie -> Format.pp_print_string ppf "trie"
    | Counter_exact Apriori.Vertical -> Format.pp_print_string ppf "vertical"
    | Counter_exact Apriori.Auto -> Format.pp_print_string ppf "auto"
    | Counter_exact (Apriori.Sampled { fraction; _ }) | Counter_sampled fraction
      ->
        Format.fprintf ppf "sampled:%g" fraction
  in
  Arg.conv (parse, print)

let resolve_counter_spec spec ~seed =
  match spec with
  | Counter_exact c -> c
  | Counter_sampled fraction -> Apriori.Sampled { fraction; seed }

(* The mined output is byte-identical across exact engines, so the
   default can follow the data (auto) without breaking anyone's diff. *)
let counter_term =
  Arg.(
    value
    & opt counter_conv (Counter_exact Apriori.Auto)
    & info [ "counter" ]
        ~doc:
          "Support-counting engine for Apriori: $(b,trie) (horizontal hash \
           trie), $(b,vertical) (word-level tid bitmaps), $(b,auto) \
           (vertical once the database fills a bitmap word), or \
           $(b,sampled:F) (count levels >= 2 on a deterministic seeded \
           uniform sample covering fraction F of the transactions — \
           faster, with known sampling noise; F = 1.0 is byte-identical \
           to vertical).  The mined output is identical across the exact \
           engines.")

let mine_cmd =
  let min_confidence =
    Arg.(value & opt (some float) None & info [ "rules" ] ~doc:"Also emit rules at this confidence.")
  in
  let run input dbfile min_support max_size min_confidence counter_spec seed
      jobs sched unsafe stats trace =
    let source = resolve_source ~who:"mine" input dbfile in
    (match (source, counter_spec) with
    | `Columnar _, (Counter_exact Apriori.Trie | Counter_sampled _) ->
        (* the trie walks transactions and the sampler plans over an
           in-RAM transpose; columnar input counts on its containers *)
        prerr_endline
          "mine: --db supports only the vertical/auto counters (use --in \
           for trie or sampled counting)";
        exit 2
    | _ -> ());
    with_obs stats trace @@ fun () ->
    set_kernels unsafe;
    let n, frequent =
      match source with
      | `Row path ->
          let db = Io.read_file path in
          let counter = resolve_counter_spec counter_spec ~seed in
          ( Db.length db,
            Pool.with_pool ~jobs (fun pool ->
                Parallel.apriori_mine pool ~sched db ~min_support ~max_size
                  ~counter) )
      | `Columnar path ->
          with_colfile ~who:"mine" path @@ fun cf ->
          let vt = Vertical.of_colfile cf in
          ( Vertical.length vt,
            Pool.with_pool ~jobs (fun pool ->
                Parallel.apriori_mine_vertical pool ~sched vt ~min_support
                  ~max_size) )
    in
    Printf.printf "%d frequent itemsets at minsup %.3f:\n" (List.length frequent) min_support;
    List.iter
      (fun (s, c) ->
        Printf.printf "  %s  %.4f\n" (Itemset.to_string s)
          (float_of_int c /. float_of_int n))
      frequent;
    Option.iter
      (fun min_confidence ->
        let rules = Rules.generate ~frequent ~n_transactions:n ~min_confidence in
        Printf.printf "%d rules at confidence >= %.2f:\n" (List.length rules) min_confidence;
        List.iter (fun r -> Format.printf "  %a@." Rules.pp_rule r) rules)
      min_confidence
  in
  Cmd.v
    (Cmd.info "mine" ~doc:"Non-private Apriori over a database file.")
    Term.(
      const run $ in_opt_term $ db_term $ minsup_term $ maxsize_term
      $ min_confidence $ counter_term $ seed_term $ jobs_term $ sched_term
      $ unsafe_kernels_term $ stats_term $ trace_term)

(* -------------------------------------------------------------- private *)

let private_cmd =
  let run input dbfile spec min_support max_size counter_spec seed jobs sched
      unsafe stats trace =
    let source = resolve_source ~who:"private" input dbfile in
    with_obs stats trace @@ fun () ->
    set_kernels unsafe;
    let db =
      match source with
      | `Row path -> Io.read_file path
      | `Columnar path ->
          (* randomization is inherently row-major (it rewrites
             transactions), so a columnar source is transposed back *)
          with_colfile ~who:"private" path (fun cf ->
              Vertical.to_db (Vertical.of_colfile cf))
    in
    let scheme = scheme_of_spec ~universe:(Db.universe db) spec in
    let counter = resolve_counter_spec counter_spec ~seed in
    let rng = Rng.create ~seed () in
    let data, truth =
      Pool.with_pool ~jobs (fun pool ->
          ( Parallel.randomize_db_tagged pool scheme rng db,
            Parallel.apriori_mine pool ~sched db ~min_support ~max_size ~counter
          ))
    in
    let mined = Ppmining.mine ~scheme ~data ~min_support ~max_size () in
    Printf.printf "operator: %s\n" (Randomizer.name scheme);
    Printf.printf "%d itemsets discovered privately (truth: %d)\n"
      (List.length mined.Ppmining.discovered) (List.length truth);
    List.iter
      (fun d ->
        Printf.printf "  %s  est %.4f (sigma %.4f)\n"
          (Itemset.to_string d.Ppmining.itemset) d.Ppmining.est_support d.Ppmining.sigma)
      mined.Ppmining.discovered;
    let acc = Ppmining.accuracy_vs ~truth ~mined in
    Printf.printf "accuracy: %d true positives, %d false positives, %d false drops\n"
      acc.Ppmining.true_positives acc.Ppmining.false_positives acc.Ppmining.false_drops
  in
  Cmd.v
    (Cmd.info "private"
       ~doc:"End-to-end demo: randomize, mine privately, compare to ground truth.")
    Term.(
      const run $ in_opt_term $ db_term $ operator_term $ minsup_term
      $ maxsize_term
      $ counter_term $ seed_term $ jobs_term $ sched_term
      $ unsafe_kernels_term $ stats_term $ trace_term)

(* -------------------------------------------------------------- recover *)

let recover_cmd =
  let itemset_term =
    Arg.(required & opt (some (list int)) None & info [ "itemset" ] ~doc:"Comma-separated item ids.")
  in
  let scheme_file =
    Arg.(value & opt (some string) None
         & info [ "scheme" ] ~doc:"Operator parameter file written by randomize --scheme-out \
                                   (overrides --operator).")
  in
  (* Deterministic seeded uniform row sample (without replacement, order
     preserved): recover's analogue of the miners' word-window sampling —
     tagged rows have no tid geometry, so it samples rows directly. *)
  let sample_rows data ~fraction ~seed =
    let n = Array.length data in
    let m =
      max 1 (min n (int_of_float (Float.round (fraction *. float_of_int n))))
    in
    if m = n then data
    else begin
      let idx = Array.init n Fun.id in
      let rng = Rng.create ~seed () in
      for i = 0 to m - 1 do
        let j = i + Rng.int rng (n - i) in
        let tmp = idx.(i) in
        idx.(i) <- idx.(j);
        idx.(j) <- tmp
      done;
      let chosen = Array.sub idx 0 m in
      Array.sort Int.compare chosen;
      Array.map (fun i -> data.(i)) chosen
    end
  in
  let run input dbfile spec scheme_file items counter_spec seed stats trace =
    let source = resolve_source ~who:"recover" input dbfile in
    match source with
    | `Columnar path ->
        (* the un-randomized columnar file: the itemset's support is a
           direct count, no estimator and no variance *)
        with_obs stats trace @@ fun () ->
        with_colfile ~who:"recover" path @@ fun cf ->
        let vt = Vertical.of_colfile cf in
        let itemset = Itemset.of_list items in
        let n = Vertical.length vt in
        let count = Vertical.support_count vt itemset in
        Printf.printf "exact support of %s: %.5f (sigma 0.00000, N = %d)\n"
          (Itemset.to_string itemset)
          (if n = 0 then 0. else float_of_int count /. float_of_int n)
          n
    | `Row input ->
    with_obs stats trace @@ fun () ->
    let universe, data = read_tagged input in
    let scheme =
      match scheme_file with
      | Some path -> Scheme_io.read_file path
      | None -> scheme_of_spec ~universe spec
    in
    let itemset = Itemset.of_list items in
    let e =
      match counter_spec with
      | Counter_exact _ ->
          (* The exact engines all read every row here; the flag is
             accepted for CLI symmetry with mine/private. *)
          Estimator.estimate ~scheme ~data ~itemset
      | Counter_sampled fraction ->
          let population = Array.length data in
          let sampled = sample_rows data ~fraction ~seed in
          if Array.length sampled = population then
            Estimator.estimate ~scheme ~data ~itemset
          else
            Estimator.estimate_sampled ~population ~scheme ~data:sampled
              ~itemset
    in
    if e.Estimator.n_population > e.Estimator.n_transactions then
      Printf.printf
        "estimated support of %s: %.5f (combined sigma %.5f, n = %d of N = %d)\n"
        (Itemset.to_string itemset) e.Estimator.support e.Estimator.sigma
        e.Estimator.n_transactions e.Estimator.n_population
    else
      Printf.printf "estimated support of %s: %.5f (sigma %.5f, N = %d)\n"
        (Itemset.to_string itemset) e.Estimator.support e.Estimator.sigma
        e.Estimator.n_transactions
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Estimate an itemset's support from a tagged randomized file (or \
          count it exactly from a columnar $(b,--db) file).")
    Term.(
      const run $ in_opt_term $ db_term $ operator_term $ scheme_file
      $ itemset_term $ counter_term $ seed_term $ stats_term $ trace_term)

(* ---------------------------------------------------------------- stats *)

let stats_cmd =
  let fimi =
    Arg.(value & flag & info [ "fimi" ] ~doc:"Read the input in FIMI format.")
  in
  let run input fimi stats trace =
    with_obs stats trace @@ fun () ->
    let db = if fimi then Io.read_fimi input else Io.read_file input in
    Printf.printf "transactions:   %d\n" (Db.length db);
    Printf.printf "universe:       %d items\n" (Db.universe db);
    Printf.printf "average size:   %.2f\n" (Db.avg_size db);
    Printf.printf "density:        %.4f%%\n" (100. *. Db.density db);
    (match Db.size_histogram db with
    | [] -> ()
    | hist ->
        let lo = fst (List.hd hist) and hi = fst (List.nth hist (List.length hist - 1)) in
        Printf.printf "size range:     %d..%d over %d distinct sizes\n" lo hi
          (List.length hist));
    if Db.length db > 0 then begin
      let qs = [ 0.5; 0.9; 0.99; 1.0 ] in
      let vals = Db.item_frequency_quantiles db qs in
      Printf.printf "item support quantiles:";
      List.iter2
        (fun q v -> Printf.printf "  p%.0f %.4f" (100. *. q) v)
        qs vals;
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Summarize a transaction database file.")
    Term.(const run $ in_term $ fimi $ stats_term $ trace_term)

(* ----------------------------------------------------------- experiment *)

let experiment_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some (enum
            [ ("t1", `T1); ("t2", `T2); ("f1", `F1); ("f5", `F5); ("a1", `A1);
              ("a4", `A4); ("e1", `E1) ])) None
      & info [] ~docv:"ID" ~doc:"Experiment id: t1, t2, f1, f5, a1, a4, or e1.")
  in
  let run which stats trace =
    with_obs stats trace @@ fun () ->
    match which with
    | `T1 ->
        List.iter
          (fun (r : Experiment.t1_row) ->
            Printf.printf "%.2f %.2f %.2f\n" r.rho1 r.rho2 r.gamma_limit)
          (Experiment.t1_breach_limits ())
    | `T2 ->
        List.iter
          (fun (r : Experiment.t2_row) ->
            Printf.printf "%d %.2f %d %.3f %.3f %s\n" r.cutoff r.rho r.size
              r.kept_fraction r.worst_posterior
              (if r.gamma = infinity then "inf" else Printf.sprintf "%.2f" r.gamma))
          (Experiment.t2_cut_and_paste ())
    | `F1 ->
        List.iter
          (fun (p : Experiment.f1_point) ->
            Printf.printf "%d %.4f %.6f\n" p.k p.support p.sigma)
          (Experiment.f1_sigma_vs_support ())
    | `F5 ->
        List.iter
          (fun (p : Experiment.f5_point) ->
            Printf.printf "%.4f %.4f %.4f %.4f\n" p.prior p.analytic_posterior
              p.empirical_posterior p.bound)
          (Experiment.f5_bound_validation ())
    | `A1 ->
        List.iter
          (fun (r : Experiment.a1_row) ->
            Printf.printf "%d %.0f %.3f %.5f %.5f\n" r.size r.gamma r.rr_epsilon
              r.sas_sigma_k2 r.rr_sigma_k2)
          (Experiment.a1_rr_comparison ())
    | `A4 ->
        List.iter
          (fun (r : Experiment.a4_row) ->
            Printf.printf "%d %.5f %.5f %d\n" r.count r.inv_rmse r.em_rmse
              r.inv_infeasible)
          (Experiment.a4_inversion_vs_em ())
    | `E1 ->
        List.iter
          (fun (r : Experiment.e1_row) ->
            Printf.printf "%.3f %.2f %.3f %.3f %.5f\n" r.alpha r.gamma r.epsilon
              r.posterior_bound r.reconstruction_rmse)
          (Experiment.e1_channel_tradeoff ())
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Recompute one experiment of the reconstructed evaluation (raw rows).")
    Term.(const run $ which $ stats_term $ trace_term)

(* ------------------------------------------------------------- selftest *)

let selftest_cmd =
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Cases per property (statistical sample sizes scale along).  \
             Defaults to $(b,PPDM_CHECK_COUNT) or 100; 25 is a sub-second \
             smoke, 10000 a deep fuzz.")
  in
  let run count seed stats trace =
    (* exit would skip with_obs's finally: compute the verdict inside the
       instrumented region, report, then exit — a failing selftest still
       gets its stats and trace written. *)
    let ok =
      with_obs stats trace @@ fun () ->
      let report = Ppdm_check.Selftest.run ?count ~seed ~log:print_endline () in
      Printf.printf "selftest: %d passed, %d failed\n"
        report.Ppdm_check.Selftest.passed report.Ppdm_check.Selftest.failed;
      Ppdm_check.Selftest.ok report
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "selftest"
       ~doc:
         "Run the in-process verification suite (property, differential, \
          statistical, and fault-injection checks) and exit non-zero on any \
          failure.  Failures print a seed that replays them.")
    Term.(const run $ count $ seed_term $ stats_term $ trace_term)

(* ------------------------------------------------------------- serve *)

let port_term =
  Arg.(value & opt int 7171 & info [ "port" ] ~doc:"TCP port on 127.0.0.1.")

let serve_cmd =
  let universe =
    Arg.(value & opt int 1000 & info [ "universe" ] ~doc:"Item universe size.")
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Ingest shards (one folder domain each).")
  in
  let batch =
    Arg.(value & opt int 256 & info [ "batch" ] ~doc:"Max reports folded per batch.")
  in
  let queue_capacity =
    Arg.(
      value & opt int 4096
      & info [ "queue-capacity" ]
          ~doc:"Per-shard queue bound; full queues stall sessions (backpressure).")
  in
  let max_frame =
    Arg.(
      value
      & opt int Ppdm_server.Framing.default_max_frame
      & info [ "max-frame" ] ~doc:"Frame payload cap in bytes.")
  in
  let itemsets =
    Arg.(
      value
      & opt_all (list int) []
      & info [ "itemset" ] ~docv:"ITEMS"
          ~doc:"Track this comma-separated itemset (repeatable).")
  in
  let singletons =
    Arg.(
      value & opt int 0
      & info [ "singletons" ] ~docv:"N"
          ~doc:"Also track the first N singleton itemsets.")
  in
  let admin_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "admin-port" ]
          ~doc:
            "Also serve the admin plane (GET /metrics, /healthz, /readyz \
             over HTTP/1.0) on this loopback port; 0 picks an ephemeral \
             one.  Enables metrics recording and the periodic sampler for \
             the server's lifetime.")
  in
  let sampler_period =
    Arg.(
      value & opt int 1000
      & info [ "sampler-period-ms" ]
          ~doc:"Admin sampler period in milliseconds (min 1).")
  in
  let run port jobs sched shards batch queue_capacity max_frame spec universe
      itemsets singletons admin_port sampler_period stats trace =
    with_obs stats trace @@ fun () ->
    let scheme = scheme_of_spec ~universe spec in
    let tracked =
      let explicit = List.map Itemset.of_list itemsets in
      let singles =
        List.init (min singletons universe) (fun i -> Itemset.singleton i)
      in
      match explicit @ singles with
      | [] -> List.init (min 5 universe) (fun i -> Itemset.singleton i)
      | l -> l
    in
    let config =
      {
        (Ppdm_server.Serve.default_config ~scheme ~itemsets:tracked) with
        port;
        jobs = max 1 jobs;
        sched;
        shards;
        batch;
        queue_capacity;
        max_frame;
        admin_port;
        sampler_period_ns = max 1 sampler_period * 1_000_000;
      }
    in
    let stats =
      Ppdm_server.Serve.run config
        ~ready:(fun port ->
          Printf.printf
            "ppdm serve: listening on 127.0.0.1:%d (operator %s, %d itemsets, \
             jobs %d, shards %d, batch %d)\n\
             %!"
            port (Randomizer.name scheme) (List.length tracked) (max 1 jobs)
            shards batch)
        ~admin_ready:(fun port ->
          Printf.printf
            "ppdm serve: admin plane on 127.0.0.1:%d (/metrics /healthz \
             /readyz)\n\
             %!"
            port)
    in
    Printf.printf "ppdm serve: stopped after %d sessions, %d reports folded\n"
      stats.Ppdm_server.Serve.sessions stats.Ppdm_server.Serve.reports
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the ingest service: accept randomized-transaction reports \
          over loopback TCP (length-prefixed binary frames), fold them \
          into sharded accumulators, and answer snapshot requests with \
          live support estimates.  Stops when a client sends a shutdown \
          frame.")
    Term.(
      const run $ port_term $ jobs_term $ sched_term $ shards $ batch
      $ queue_capacity $ max_frame $ operator_term $ universe $ itemsets
      $ singletons $ admin_port $ sampler_period $ stats_term $ trace_term)

(* -------------------------------------------------------------- load *)

let load_cmd =
  let universe =
    Arg.(
      value & opt int 1000
      & info [ "universe" ] ~doc:"Item universe size (must match the server).")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Concurrent reporting connections.")
  in
  let count =
    Arg.(value & opt int 10000 & info [ "count" ] ~doc:"Transactions to generate and report.")
  in
  let size =
    Arg.(value & opt int 5 & info [ "size" ] ~doc:"Transaction size.")
  in
  let do_shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send a shutdown frame once done (stops the server).")
  in
  let run port clients count size spec universe seed do_shutdown stats trace =
    if clients < 1 then begin
      prerr_endline "load: clients < 1";
      exit 2
    end;
    let ok =
      with_obs stats trace @@ fun () ->
      let scheme = scheme_of_spec ~universe spec in
      let rng = Rng.create ~seed () in
      let db = Simple.fixed_size rng ~universe ~size ~count in
      let data = Randomizer.apply_db_tagged scheme rng db in
      (* One domain per client, each owning a contiguous slice and its
         whole connection lifecycle.  A server runs at most [jobs]
         sessions at once, so surplus clients wait for a free worker —
         progress needs every client to eventually disconnect on its own,
         which is why the connections must not be driven in lockstep from
         one thread. *)
      let slice i =
        let lo = i * count / clients and hi = (i + 1) * count / clients in
        Array.sub data lo (hi - lo)
      in
      let drive part () =
        let c = Ppdm_server.Client.connect ~port () in
        Fun.protect
          ~finally:(fun () -> Ppdm_server.Client.close c)
          (fun () ->
            ignore (Ppdm_server.Client.handshake c ~scheme ~sizes:[ size ] ());
            Array.iter
              (fun (sz, y) -> Ppdm_server.Client.report c ~size:sz y)
              part;
            (* A snapshot round-trip is a sync barrier: the server handles
               a session's frames in order, so replying proves every
               report above has been routed into the shard queues. *)
            ignore (Ppdm_server.Client.snapshot c ~flush:false))
      in
      Array.init clients (fun i -> Domain.spawn (drive (slice i)))
      |> Array.iter Domain.join;
      let ctl = Ppdm_server.Client.connect ~port () in
      ignore (Ppdm_server.Client.handshake ctl ~sizes:[] ());
      let json = Ppdm_server.Client.snapshot ctl ~flush:true in
      let parsed = Ppdm_obs.Json.parse json in
      (match parsed with
      | Ok _ -> print_endline json
      | Error e -> Printf.eprintf "load: snapshot JSON does not parse: %s\n" e);
      if do_shutdown then Ppdm_server.Client.shutdown ctl;
      Ppdm_server.Client.close ctl;
      Result.is_ok parsed
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Load-generate against a running ppdm serve: randomize a \
          synthetic database client-side, stream the reports over \
          loopback connections, then print the server's flushed snapshot \
          JSON (exits non-zero if it does not parse).")
    Term.(
      const run $ port_term $ clients $ count $ size $ operator_term
      $ universe $ seed_term $ do_shutdown $ stats_term $ trace_term)

(* ----------------------------------------------------------- top / stat *)

let admin_port_term =
  Arg.(
    value & opt int 7172
    & info [ "admin-port" ]
        ~doc:"Admin-plane port of the ppdm serve to scrape (on 127.0.0.1).")

let fetch_metrics port =
  match Ppdm_server.Admin.fetch ~port "/metrics" with
  | Error msg -> Error msg
  | Ok (200, body) -> (
      match Ppdm_obs.Exposition.parse body with
      | Ok samples -> Ok (body, samples)
      | Error e -> Error ("malformed exposition: " ^ e))
  | Ok (status, _) -> Error (Printf.sprintf "HTTP %d from /metrics" status)

let sample_value samples ?(labels = []) name =
  List.find_map
    (fun (s : Ppdm_obs.Exposition.sample) ->
      if
        s.Ppdm_obs.Exposition.name = name
        && List.for_all (fun kv -> List.mem kv s.Ppdm_obs.Exposition.labels) labels
      then Some s.Ppdm_obs.Exposition.value
      else None)
    samples

(* Every sample of family [name], keyed by its [key] label, sorted
   numerically when the label values are numbers. *)
let samples_by_label samples name key =
  List.filter_map
    (fun (s : Ppdm_obs.Exposition.sample) ->
      if s.Ppdm_obs.Exposition.name = name then
        Option.map
          (fun v -> (v, s.Ppdm_obs.Exposition.value))
          (List.assoc_opt key s.Ppdm_obs.Exposition.labels)
      else None)
    samples
  |> List.sort (fun (a, _) (b, _) ->
         match (int_of_string_opt a, int_of_string_opt b) with
         | Some a, Some b -> compare a b
         | _ -> compare a b)

let dash_pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let render_dashboard ~port ~scrape samples =
  let b = Buffer.create 1024 in
  let v ?labels name = sample_value samples ?labels name in
  let num ?labels name = Option.value (v ?labels name) ~default:0. in
  Buffer.add_string b
    (Printf.sprintf "ppdm top — 127.0.0.1:%d  (scrape #%d)\n\n" port scrape);
  Buffer.add_string b
    (Printf.sprintf
       "  ingest    %8.1f reports/s    reports %-10.0f sessions %-6.0f \
        accepted %.0f\n"
       (num "ppdm_server_ingest_rate")
       (num "ppdm_server_reports_total")
       (num "ppdm_server_sessions_total")
       (num "ppdm_server_accepted_total"));
  let lat suffix = num ("ppdm_server_fold_latency_ns" ^ suffix) in
  Buffer.add_string b
    (Printf.sprintf
       "  fold lat  min %-9s p50 %-9s p90 %-9s p99 %-9s max %s  (last %.0fs \
        window)\n"
       (dash_pretty_ns (lat "_min"))
       (dash_pretty_ns (lat "_p50"))
       (dash_pretty_ns (lat "_p90"))
       (dash_pretty_ns (lat "_p99"))
       (dash_pretty_ns (lat "_max"))
       60.);
  let depths = samples_by_label samples "ppdm_server_queue_depth" "shard" in
  if depths <> [] then begin
    Buffer.add_string b "\n  shard      depth     folded\n";
    List.iter
      (fun (shard, depth) ->
        Buffer.add_string b
          (Printf.sprintf "  %5s  %9.0f  %9.0f\n" shard depth
             (num ~labels:[ ("shard", shard) ] "ppdm_server_folded")))
      depths
  end;
  let busy = samples_by_label samples "ppdm_pool_busy_fraction" "worker" in
  if busy <> [] then begin
    Buffer.add_string b "\n  workers  ";
    List.iter
      (fun (w, frac) ->
        Buffer.add_string b (Printf.sprintf "w%s %3.0f%%  " w (frac *. 100.)))
      busy;
    Buffer.add_char b '\n'
  end;
  Buffer.add_string b
    (Printf.sprintf
       "\n  gc        heap %.1f MiB   minor %.0f   major %.0f   sampler \
        ticks %.0f\n"
       (num "ppdm_gc_heap_words" *. 8. /. (1024. *. 1024.))
       (num "ppdm_gc_minor_collections")
       (num "ppdm_gc_major_collections")
       (num "ppdm_server_sampler_ticks_total"));
  Buffer.contents b

let top_cmd =
  let interval =
    Arg.(
      value & opt int 1000
      & info [ "interval-ms" ] ~doc:"Refresh period in milliseconds (min 50).")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after N refreshes (0: run until interrupted).")
  in
  let run port interval iterations =
    let interval = float_of_int (max 50 interval) /. 1000. in
    let rec go scrape =
      match fetch_metrics port with
      | Error msg ->
          Printf.eprintf "ppdm top: %s\n" msg;
          exit 1
      | Ok (_, samples) ->
          (* Clear screen + home, then one dashboard frame. *)
          Printf.printf "\027[2J\027[H%s%!"
            (render_dashboard ~port ~scrape samples);
          if iterations = 0 || scrape < iterations then begin
            Unix.sleepf interval;
            go (scrape + 1)
          end
    in
    go 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running ppdm serve admin plane: poll \
          /metrics and redraw ingest rate, report->fold latency \
          quantiles, per-shard queue depths, worker busy fractions, and \
          GC health on a single refreshing screen.")
    Term.(const run $ admin_port_term $ interval $ iterations)

let stat_cmd =
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:"Print the raw OpenMetrics exposition instead of the summary.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Scrape exactly once and exit (the default; the flag exists so \
             scripts can state it).")
  in
  let run port raw once =
    ignore once;
    match fetch_metrics port with
    | Error msg ->
        Printf.eprintf "ppdm stat: %s\n" msg;
        exit 1
    | Ok (body, samples) ->
        if raw then print_string body
        else print_string (render_dashboard ~port ~scrape:1 samples)
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "One-shot scrape of a running ppdm serve admin plane: print the \
          dashboard summary once (or the raw OpenMetrics text with \
          --raw) and exit.  Exits non-zero if the admin plane is \
          unreachable or the exposition does not parse.")
    Term.(const run $ admin_port_term $ raw $ once)

(* ------------------------------------------------------------ bench-diff *)

let bench_diff_cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline BENCH_*.json file.")
  in
  let current =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current BENCH_*.json file to gate.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.5
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Allowed slowdown as a fraction: a measurement regresses when \
             its ns/op exceeds the baseline's by more than FRAC (0.5 = \
             fails beyond 1.5x).  Loose values gate on gross regressions \
             only, which is what a cross-machine CI baseline can support.")
  in
  let load path =
    match Ppdm_obs.Benchdata.read_file path with
    | Ok ms -> ms
    | Error e ->
        Printf.eprintf "bench-diff: %s: %s\n" path e;
        exit 2
  in
  let run baseline_path current_path tolerance =
    if tolerance < 0. then begin
      prerr_endline "bench-diff: negative tolerance";
      exit 2
    end;
    let baseline = load baseline_path and current = load current_path in
    let d = Ppdm_obs.Benchdata.diff ~tolerance ~baseline ~current in
    Printf.printf "bench-diff: %d measurement(s) compared at tolerance %.2f\n"
      d.Ppdm_obs.Benchdata.compared tolerance;
    List.iter
      (fun (m : Ppdm_obs.Benchdata.measurement) ->
        Printf.printf "  missing from current: %s\n" (Ppdm_obs.Benchdata.key m))
      d.Ppdm_obs.Benchdata.missing;
    List.iter
      (fun (m : Ppdm_obs.Benchdata.measurement) ->
        Printf.printf "  new in current:       %s\n" (Ppdm_obs.Benchdata.key m))
      d.Ppdm_obs.Benchdata.added;
    List.iter
      (fun (r : Ppdm_obs.Benchdata.regression) ->
        Printf.printf "  REGRESSION %-40s %.0f -> %.0f ns/op (%.2fx)\n"
          (Ppdm_obs.Benchdata.key r.Ppdm_obs.Benchdata.baseline)
          r.Ppdm_obs.Benchdata.baseline.Ppdm_obs.Benchdata.ns_per_op
          r.Ppdm_obs.Benchdata.current.Ppdm_obs.Benchdata.ns_per_op
          r.Ppdm_obs.Benchdata.ratio)
      d.Ppdm_obs.Benchdata.regressions;
    if d.Ppdm_obs.Benchdata.regressions <> [] then exit 1;
    print_endline "bench-diff: ok"
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two machine-readable benchmark files (written by the \
          bench harness as BENCH_<section>.json) and exit non-zero when \
          any shared measurement regresses beyond the tolerance.")
    Term.(const run $ baseline $ current $ tolerance)

(* -------------------------------------------------------------- convert *)

let convert_cmd =
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SRC"
          ~doc:"Source transaction file (FIMI or header format, sniffed).")
  in
  let dst =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DST" ~doc:"Columnar output file (.ppdmc).")
  in
  let universe =
    Arg.(
      value
      & opt (some int) None
      & info [ "universe" ]
          ~doc:
            "Universe override for FIMI input (default: inferred as max \
             item + 1).  An item at or above it is an error, never \
             silently folded in.")
  in
  let run src dst universe stats trace =
    with_obs stats trace @@ fun () ->
    match Colfile.convert ?universe ~src ~dst () with
    | s ->
        Printf.printf
          "wrote %s: %d transactions over %d items, %d containers (%d \
           dense, %d sparse, %d run), %d payload bytes\n"
          dst s.Colfile.cv_transactions s.Colfile.cv_universe
          s.Colfile.cv_blocks s.Colfile.cv_dense s.Colfile.cv_sparse
          s.Colfile.cv_run s.Colfile.cv_payload_bytes
    | exception Io.Item_out_of_universe { item; universe } ->
        Printf.eprintf "convert: item %d outside the declared universe %d\n"
          item universe;
        exit 1
    | exception Failure msg ->
        Printf.eprintf "convert: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Transpose a transaction file into the compressed columnar \
          format (.ppdmc) in one streaming pass — the source database is \
          never resident, so files larger than RAM convert fine.  The \
          result feeds $(b,--db) on mine/private/recover.")
    Term.(const run $ src $ dst $ universe $ stats_term $ trace_term)

let main =
  Cmd.group
    (Cmd.info "ppdm" ~version:"1.0.0"
       ~doc:"Privacy-preserving data mining with amplification-bounded randomization.")
    [ gen_cmd; randomize_cmd; analyze_cmd; mine_cmd; private_cmd; recover_cmd;
      convert_cmd; stats_cmd; experiment_cmd; serve_cmd; load_cmd; top_cmd;
      stat_cmd; selftest_cmd; bench_diff_cmd ]

let () = exit (Cmd.eval main)
